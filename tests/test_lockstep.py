"""Lock-step multi-config simulation: bit-exactness and isolation.

The lock-step driver (:mod:`repro.core.lockstep`) interleaves N
pipelines cycle-by-cycle over one shared trace.  These tests pin the
central claim — interleaving changes *nothing* — three ways:

1. the full 84-cell golden matrix, run as 6 lock-step groups (one per
   workload, all 14 arches at once), must match ``golden_stats.json``
   exactly — the same oracle the serial path answers to;
2. a subset is compared field-by-field (``SimResult.to_dict``) against
   fresh serial runs, catching drift in stats the golden file doesn't
   pin (energy counters, occupancy averages, breakdowns);
3. the runner's lock-step tier must leave cache + results identical to
   a ``lockstep=False`` batch, while actually batching (group counter).

Plus failure isolation (a dying pipeline must not take its siblings
down) and a differential fuzz smoke through the structure-of-arrays
path.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.core.config import config_for
from repro.core.lockstep import run_lockstep
from repro.core.pipeline import Pipeline, simulate
from repro.workloads.suite import get_trace

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_stats.json").read_text()
)

_WORKLOADS = sorted({cell.split("/")[0] for cell in GOLDEN["results"]})
_ARCHES = sorted({cell.split("/")[1] for cell in GOLDEN["results"]})


@pytest.mark.parametrize("workload", _WORKLOADS)
def test_lockstep_matches_golden_matrix(workload):
    """All arches over one workload, in one pass == golden stats."""
    trace = get_trace(workload, GOLDEN["ops"], GOLDEN["seed"])
    outcomes = run_lockstep(trace, [config_for(arch) for arch in _ARCHES])
    for arch, outcome in zip(_ARCHES, outcomes):
        cell = f"{workload}/{arch}"
        assert not isinstance(outcome, Exception), f"{cell}: {outcome!r}"
        expect = GOLDEN["results"][cell]
        assert outcome.cycles == expect["cycles"], cell
        assert outcome.stats.committed == expect["committed"], cell
        assert outcome.stats.issued == expect["issued"], cell
        assert round(outcome.ipc, 6) == pytest.approx(expect["ipc"]), cell


def test_lockstep_to_dict_identical_to_serial():
    """Every serialized field — not just the golden subset — matches."""
    trace = get_trace("histogram", 1000, 7)
    arches = ("ooo", "ooo_oldest", "ces", "ballerino")
    outcomes = run_lockstep(trace, [config_for(arch) for arch in arches])
    for arch, outcome in zip(arches, outcomes):
        serial = simulate(trace, config_for(arch))
        assert outcome.to_dict() == serial.to_dict(), arch


def test_lockstep_isolates_failing_pipeline():
    """One slot dying mid-pass leaves its siblings' results intact."""
    trace = get_trace("histogram", 500, 7)
    arches = ("ooo", "ces", "ballerino")
    poisoned = 1  # fail the middle slot so both neighbours must survive

    class _Bomb(Pipeline):
        def step(self):
            if self.cycle >= 40:
                raise RuntimeError("injected mid-flight failure")
            return super().step()

    built = []

    def factory(trace_arg, config):
        index = len(built)
        built.append(config.name)
        cls = _Bomb if index == poisoned else Pipeline
        return cls(trace_arg, config)

    outcomes = run_lockstep(
        trace, [config_for(arch) for arch in arches],
        pipeline_factory=factory,
    )
    assert isinstance(outcomes[poisoned], RuntimeError)
    for index, arch in enumerate(arches):
        if index == poisoned:
            continue
        serial = simulate(trace, config_for(arch))
        assert outcomes[index].to_dict() == serial.to_dict(), arch


def test_lockstep_bad_config_fails_slot_only():
    """A config the factory can't even build doesn't kill the pass."""
    trace = get_trace("histogram", 500, 7)

    def factory(trace_arg, config):
        if config.name.startswith("ces"):
            raise ValueError("unbuildable config")
        return Pipeline(trace_arg, config)

    outcomes = run_lockstep(
        trace, [config_for("ooo"), config_for("ces")],
        pipeline_factory=factory,
    )
    assert isinstance(outcomes[1], ValueError)
    assert outcomes[0].to_dict() == simulate(trace, config_for("ooo")).to_dict()


def test_runner_lockstep_tier_equivalent(tmp_path):
    """run_many with the lock-step tier == per-cell serial, cache included."""
    tasks = (
        [("histogram", config_for(arch)) for arch in ("ooo", "ces", "ballerino")]
        + [("mdep_chain", config_for(arch)) for arch in ("ooo", "ballerino")]
        + [("stream_triad", config_for("ooo"))]  # singleton: per-cell path
    )
    batched = ExperimentRunner(
        target_ops=1000, cache_dir=str(tmp_path / "ls"), jobs=1,
        lockstep=True, run_log="")
    serial = ExperimentRunner(
        target_ops=1000, cache_dir=str(tmp_path / "serial"), jobs=1,
        lockstep=False, run_log="")
    got = batched.run_many(tasks)
    want = serial.run_many(tasks)
    assert batched.lockstep_groups == 2  # histogram x3, mdep_chain x2
    assert serial.lockstep_groups == 0
    for a, b in zip(got, want):
        assert a.ok and b.ok
        assert a.to_dict() == b.to_dict()
    # the disk caches must be interchangeable byte-for-byte per cell
    ls_entries = {p.name: p.read_text() for p in (tmp_path / "ls").iterdir()}
    serial_entries = {
        p.name: p.read_text() for p in (tmp_path / "serial").iterdir()}
    assert ls_entries == serial_entries


def test_runner_lockstep_repeat_batch_all_cache_hits(tmp_path):
    """A second identical batch is served entirely from the cache."""
    runner = ExperimentRunner(
        target_ops=1000, cache_dir=str(tmp_path), jobs=1, lockstep=True,
        run_log="")
    tasks = [("histogram", config_for(arch)) for arch in ("ooo", "ces")]
    runner.run_many(tasks)
    sims_before = runner.simulations_run
    groups_before = runner.lockstep_groups
    runner.run_many(tasks)
    assert runner.simulations_run == sims_before
    assert runner.lockstep_groups == groups_before


def test_fuzz_smoke_through_soa_path():
    """Differential oracle over generated programs on the SoA storage.

    A handful of programs on a 3-arch slice suffices here — the
    dedicated fuzz-smoke CI job runs the large campaign; this pins that
    the structure-of-arrays rewrite didn't break the differential
    oracle itself (replay, arch-state diff, and per-cycle invariant
    checking all reach through InFlightOp views into the op table).
    Seed 12 is disjoint from the seeds the fuzzer unit tests burn and
    generates short programs (~3k executed ops across the batch), so
    the per-cycle invariant checker stays affordable in tier-1.
    """
    from repro.verify.fuzz import run_fuzz

    report = run_fuzz(programs=3, seed=12,
                      arches=("ooo", "ces", "ballerino"), progress=None)
    assert report.ok, report.full_report()
