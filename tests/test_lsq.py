"""Tests for the load/store unit: forwarding and violation detection."""

import pytest

from repro.lsq import LoadStoreUnit


class TestAllocation:
    def test_capacity(self):
        lsu = LoadStoreUnit(lq_size=2, sq_size=1)
        lsu.allocate_load(0, pc=1)
        lsu.allocate_load(1, pc=2)
        assert lsu.lq_full()
        with pytest.raises(RuntimeError):
            lsu.allocate_load(2, pc=3)
        lsu.allocate_store(3, pc=4)
        assert lsu.sq_full()

    def test_commit_frees_entries(self):
        lsu = LoadStoreUnit(lq_size=1, sq_size=1)
        lsu.allocate_load(0, pc=1)
        lsu.commit_load(0)
        assert not lsu.lq_full()
        lsu.allocate_store(1, pc=2)
        lsu.store_address_ready(1, addr=0x40, cycle=5)
        entry = lsu.commit_store(1)
        assert entry.addr == 0x40
        assert not lsu.sq_full()


class TestForwarding:
    def test_forwards_from_matching_older_store(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)
        lsu.allocate_load(1, pc=2)
        lsu.store_address_ready(0, 0x100, cycle=3)
        lsu.store_data_ready(0, cycle=3)
        fw = lsu.load_executing(1, 0x100, cycle=5)
        assert fw.forwarded
        assert fw.source_seq == 0
        assert fw.ready_cycle == 3

    def test_youngest_older_store_wins(self):
        lsu = LoadStoreUnit()
        for seq in (0, 1):
            lsu.allocate_store(seq, pc=seq)
            lsu.store_address_ready(seq, 0x100, cycle=seq)
            lsu.store_data_ready(seq, cycle=seq)
        lsu.allocate_load(2, pc=9)
        fw = lsu.load_executing(2, 0x100, cycle=5)
        assert fw.source_seq == 1

    def test_younger_store_is_invisible(self):
        lsu = LoadStoreUnit()
        lsu.allocate_load(0, pc=1)
        lsu.allocate_store(1, pc=2)
        lsu.store_address_ready(1, 0x100, cycle=0)
        fw = lsu.load_executing(0, 0x100, cycle=5)
        assert not fw.forwarded

    def test_different_address_goes_to_memory(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)
        lsu.store_address_ready(0, 0x100, cycle=0)
        lsu.allocate_load(1, pc=2)
        fw = lsu.load_executing(1, 0x108, cycle=5)
        assert not fw.forwarded

    def test_forward_before_data_ready_reports_none(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)
        lsu.store_address_ready(0, 0x100, cycle=0)
        lsu.allocate_load(1, pc=2)
        fw = lsu.load_executing(1, 0x100, cycle=5)
        assert fw.forwarded and fw.ready_cycle is None


class TestViolations:
    def test_load_before_store_same_addr_violates(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)
        lsu.allocate_load(1, pc=2)
        lsu.load_executing(1, 0x200, cycle=3)
        lsu.load_executed(1, cycle=3, source_seq=-1)
        violators = lsu.store_address_ready(0, 0x200, cycle=10)
        assert violators == [1]
        assert lsu.violations == 1

    def test_no_violation_for_different_addr(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)
        lsu.allocate_load(1, pc=2)
        lsu.load_executing(1, 0x200, cycle=3)
        lsu.load_executed(1, cycle=3)
        assert lsu.store_address_ready(0, 0x300, cycle=10) == []

    def test_no_violation_if_load_not_yet_executed(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)
        lsu.allocate_load(1, pc=2)
        lsu.load_executing(1, 0x200, cycle=3)  # address known, no value yet
        assert lsu.store_address_ready(0, 0x200, cycle=10) == []

    def test_no_violation_if_load_forwarded_from_younger_store(self):
        """Load got its value from a store younger than the resolving one."""
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)  # resolves late
        lsu.allocate_store(1, pc=2)  # the actual producer
        lsu.store_address_ready(1, 0x200, cycle=2)
        lsu.store_data_ready(1, cycle=2)
        lsu.allocate_load(2, pc=3)
        fw = lsu.load_executing(2, 0x200, cycle=4)
        lsu.load_executed(2, cycle=5, source_seq=fw.source_seq)
        assert lsu.store_address_ready(0, 0x200, cycle=10) == []

    def test_multiple_violators_sorted(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=1)
        for seq in (2, 1):
            lsu.allocate_load(seq, pc=seq)
            lsu.load_executing(seq, 0x200, cycle=3)
            lsu.load_executed(seq, cycle=3)
        assert lsu.store_address_ready(0, 0x200, cycle=10) == [1, 2]


class TestFlush:
    def test_flush_removes_younger_entries(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=10)
        lsu.allocate_load(1, pc=11)
        lsu.allocate_store(2, pc=12)
        flushed = lsu.flush_from(1)
        assert flushed == [(2, 12)]
        assert lsu.sq_occupancy == 1
        assert lsu.lq_occupancy == 0

    def test_flushed_store_resolution_is_ignored(self):
        lsu = LoadStoreUnit()
        lsu.allocate_store(0, pc=10)
        lsu.flush_from(0)
        assert lsu.store_address_ready(0, 0x40, cycle=5) == []
