"""Tests for the store-set memory dependence predictor."""

import pytest

from repro.lsq import StoreSetPredictor


LOAD_PC, STORE_PC, OTHER_STORE_PC = 100, 200, 300


class TestTraining:
    def test_untrained_pair_has_no_dependence(self):
        mdp = StoreSetPredictor()
        assert mdp.load_dispatched(LOAD_PC) is None
        assert mdp.store_dispatched(STORE_PC, seq=1) is None

    def test_violation_creates_store_set(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(LOAD_PC, STORE_PC)
        assert mdp.ssid_of(LOAD_PC) is not None
        assert mdp.ssid_of(LOAD_PC) == mdp.ssid_of(STORE_PC)

    def test_merge_rule_takes_minimum(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(LOAD_PC, STORE_PC)  # ssid A
        mdp.train_violation(101, OTHER_STORE_PC)  # ssid B
        mdp.train_violation(LOAD_PC, OTHER_STORE_PC)  # merge
        assert mdp.ssid_of(LOAD_PC) == mdp.ssid_of(OTHER_STORE_PC)
        assert mdp.ssid_of(LOAD_PC) == min(0, 1)

    def test_one_sided_assignment_adopts_existing_ssid(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(LOAD_PC, STORE_PC)
        ssid = mdp.ssid_of(LOAD_PC)
        mdp.train_violation(LOAD_PC, OTHER_STORE_PC)
        assert mdp.ssid_of(OTHER_STORE_PC) == ssid


class TestDependences:
    def _trained(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(LOAD_PC, STORE_PC)
        return mdp

    def test_load_depends_on_inflight_store(self):
        mdp = self._trained()
        assert mdp.store_dispatched(STORE_PC, seq=5) is None
        assert mdp.load_dispatched(LOAD_PC) == 5

    def test_store_store_serialisation(self):
        mdp = self._trained()
        mdp.train_violation(LOAD_PC, OTHER_STORE_PC)
        mdp.store_dispatched(STORE_PC, seq=5)
        dep = mdp.store_dispatched(OTHER_STORE_PC, seq=9)
        assert dep == 5  # second store of the set follows the first

    def test_issue_releases_lfst(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        mdp.store_issued(STORE_PC, seq=5)
        assert mdp.load_dispatched(LOAD_PC) is None

    def test_release_ignores_stale_seq(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        mdp.store_dispatched(STORE_PC, seq=9)  # newer instance
        mdp.store_issued(STORE_PC, seq=5)  # stale release must not clear
        assert mdp.load_dispatched(LOAD_PC) == 9

    def test_flush_clears_last_updater(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        mdp.flush_store(STORE_PC, seq=5)
        assert mdp.load_dispatched(LOAD_PC) is None


class TestSteeringExtension:
    def _trained(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(LOAD_PC, STORE_PC)
        return mdp

    def test_hint_after_store_steered(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        mdp.record_store_steering(STORE_PC, seq=5, iq_index=3, partition=1)
        hint = mdp.steering_hint(LOAD_PC)
        assert hint is not None
        assert hint.iq_index == 3
        assert hint.partition == 1
        assert hint.store_seq == 5

    def test_no_hint_without_steering_record(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        assert mdp.steering_hint(LOAD_PC) is None

    def test_reserved_hint_blocks_second_consumer(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        mdp.record_store_steering(STORE_PC, seq=5, iq_index=3)
        hint = mdp.steering_hint(LOAD_PC)
        hint.reserved = True  # first consumer steered behind the store
        assert mdp.steering_hint(LOAD_PC) is None

    def test_hint_cleared_when_store_issues(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        mdp.record_store_steering(STORE_PC, seq=5, iq_index=3)
        mdp.store_issued(STORE_PC, seq=5)
        assert mdp.steering_hint(LOAD_PC) is None

    def test_stale_steering_record_ignored(self):
        mdp = self._trained()
        mdp.store_dispatched(STORE_PC, seq=5)
        mdp.store_dispatched(STORE_PC, seq=9)
        mdp.record_store_steering(STORE_PC, seq=5, iq_index=3)  # stale
        assert mdp.steering_hint(LOAD_PC) is None


class TestConstruction:
    def test_rejects_bad_ssit_size(self):
        with pytest.raises(ValueError):
            StoreSetPredictor(ssit_entries=1000)

    def test_ssid_wraps_around(self):
        mdp = StoreSetPredictor(num_ssids=2)
        mdp.train_violation(1, 2)
        mdp.train_violation(3, 4)
        mdp.train_violation(5, 6)  # wraps back to ssid 0
        assert mdp.ssid_of(5) in (0, 1)
