"""Tests for MSHRs, the prefetcher, DRAM, and the hierarchy glue."""

import pytest

from repro.memory import (
    DRAM,
    DRAMTimings,
    HierarchyConfig,
    MemoryHierarchy,
    MSHRFile,
    StridePrefetcher,
)


class TestMSHR:
    def test_allocate_and_lookup(self):
        mshr = MSHRFile(4)
        mshr.allocate(line=1, completion=100)
        assert mshr.lookup(1, cycle=50) == 100
        assert mshr.merges == 1
        assert mshr.lookup(2, cycle=50) is None

    def test_entries_reaped_after_completion(self):
        mshr = MSHRFile(2)
        mshr.allocate(1, 10)
        assert mshr.outstanding(5) == 1
        assert mshr.outstanding(11) == 0
        assert mshr.lookup(1, 11) is None

    def test_capacity_limits_parallelism(self):
        mshr = MSHRFile(2)
        mshr.allocate(1, 100)
        mshr.allocate(2, 120)
        assert mshr.earliest_free(0) == 100  # must wait for the first miss
        assert mshr.full_stalls == 1

    def test_free_when_below_capacity(self):
        mshr = MSHRFile(2)
        mshr.allocate(1, 100)
        assert mshr.earliest_free(0) == 0
        assert mshr.full_stalls == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestPrefetcher:
    def test_detects_constant_stride(self):
        pf = StridePrefetcher(degree=2, threshold=2)
        addrs = [1000 + i * 64 for i in range(6)]
        issued = []
        for addr in addrs:
            issued.extend(pf.train(pc=4, addr=addr))
        assert issued  # becomes confident and prefetches ahead
        assert all(a > addrs[-1] - 64 for a in issued[-2:])

    def test_small_strides_scaled_to_lines(self):
        pf = StridePrefetcher(degree=1, threshold=2)
        out = []
        for i in range(8):
            out = pf.train(pc=4, addr=2000 + i * 8)
        # the prefetch must land at least one line beyond the current access
        assert out and out[0] - (2000 + 7 * 8) >= 56

    def test_random_pattern_stays_quiet(self):
        pf = StridePrefetcher(threshold=2)
        import random

        rng = random.Random(1)
        issued = []
        for _ in range(50):
            issued.extend(pf.train(pc=4, addr=rng.randrange(1 << 20)))
        assert len(issued) <= 2

    def test_per_pc_tracking(self):
        pf = StridePrefetcher(threshold=2)
        for i in range(6):
            pf.train(pc=4, addr=1000 + i * 64)
            out = pf.train(pc=8, addr=9000 + i * 128)
        assert out and (out[0] - (9000 + 5 * 128)) % 128 == 0

    def test_rejects_bad_table_size(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_entries=100)


class TestDRAM:
    def test_row_hit_is_faster_than_row_miss(self):
        dram = DRAM()
        first = dram.access(0, cycle=0)  # row miss (activate)
        second = dram.access(64 * dram.num_banks, cycle=first)  # same bank+row
        t_hit = second - first
        other_row = dram.access(
            dram.row_bytes * dram.num_banks * 7, cycle=second
        )
        assert dram.row_hits >= 1
        assert dram.row_misses >= 2

    def test_bank_parallelism(self):
        dram = DRAM()
        a = dram.access(0, cycle=0)
        b = dram.access(64, cycle=0)  # different bank
        # overlapping accesses to different banks serialise only on the bus
        assert b - a <= dram.timings.t_burst + 1

    def test_same_bank_serialises(self):
        dram = DRAM()
        bank0, row0 = dram._map(0)
        # find an address in a different row that folds onto the same bank
        conflict = next(
            addr
            for addr in range(0, 1 << 24, 64)
            if dram._map(addr) == (bank0, row0 + 9)
        )
        a = dram.access(0, cycle=0)
        b = dram.access(conflict, cycle=0)
        # same bank different row: precharge+activate after first completes
        assert b > a + dram.timings.t_rp

    def test_access_counts(self):
        dram = DRAM()
        for i in range(10):
            dram.access(i * 64, cycle=0)
        assert dram.accesses == 10
        assert 0.0 <= dram.row_hit_rate <= 1.0


class TestHierarchy:
    def test_l1_hit_latency(self):
        hier = MemoryHierarchy(HierarchyConfig(prefetch=False))
        first = hier.access_data(0x1000, cycle=0)
        assert first.level == "dram"
        warm_cycle = first.complete_cycle + 10
        second = hier.access_data(0x1008, cycle=warm_cycle)  # same line
        assert second.level == "l1d"
        assert second.complete_cycle == warm_cycle + hier.l1d.latency

    def test_miss_goes_through_all_levels(self):
        hier = MemoryHierarchy(HierarchyConfig(prefetch=False))
        result = hier.access_data(0x9000, cycle=0)
        # cold miss must cost at least the sum of the lookup latencies
        floor = (
            hier.l1d.latency + hier.l2.latency + hier.l3.latency
            + hier.dram.timings.t_cas
        )
        assert result.complete_cycle >= floor

    def test_l2_hit_after_l1_eviction(self):
        config = HierarchyConfig(prefetch=False, l1_size=4096, l1_assoc=1)
        hier = MemoryHierarchy(config)
        hier.access_data(0x0, cycle=0)
        # evict line 0 from the direct-mapped L1 by touching its conflict
        hier.access_data(4096, cycle=1000)
        result = hier.access_data(0x0, cycle=2000)
        assert result.level == "l2"

    def test_ifetch_uses_l1i(self):
        hier = MemoryHierarchy()
        hier.access_ifetch(pc=0, cycle=0)
        assert hier.l1i.stats.accesses == 1
        assert hier.l1d.stats.accesses == 0

    def test_in_flight_merge(self):
        hier = MemoryHierarchy(HierarchyConfig(prefetch=False))
        a = hier.access_data(0x5000, cycle=0)
        b = hier.access_data(0x5008, cycle=1)  # same line, still in flight
        assert b.complete_cycle <= a.complete_cycle + hier.l1d.latency + 1

    def test_prefetcher_hides_stream_latency(self):
        cold = MemoryHierarchy(HierarchyConfig(prefetch=False))
        warm = MemoryHierarchy(HierarchyConfig(prefetch=True))
        def stream(hier):
            cycle, total = 0, 0
            for i in range(200):
                r = hier.access_data(0x10000 + i * 8, cycle=cycle, pc=4)
                total += r.complete_cycle - cycle
                cycle += 3
            return total
        assert stream(warm) < stream(cold)

    def test_events_counted(self):
        hier = MemoryHierarchy(HierarchyConfig(prefetch=False))
        hier.access_data(0x100, 0)
        assert hier.events["l1d"] == 1
        assert hier.events["l2"] == 1
        assert hier.events["l3"] == 1
        assert hier.events["dram"] == 1

    def test_stats_shape(self):
        hier = MemoryHierarchy()
        hier.access_data(0x40, 0)
        stats = hier.stats()
        assert set(stats) == {"l1i", "l1d", "l2", "l3", "dram"}
