"""Metrics registry + interval sampler: types, interval math, neutrality.

The neutrality class is the load-bearing one: enabling the registry,
the sampler AND stall attribution together must leave every simulated
statistic byte-identical to the uninstrumented golden cells in
``tests/golden_stats.json`` — observability may never perturb what it
observes.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import config_for
from repro.core.pipeline import Pipeline
from repro.core.stats import RESULT_SCHEMA_VERSION, SimResult
from repro.telemetry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    IntervalSampler,
    MetricsRegistry,
    StallAttribution,
    Tracer,
    chrome_counter_events,
    flatten_sample,
    samples_to_csv,
    series,
)
from repro.workloads.suite import get_trace

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_stats.json").read_text()
)


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        counter = reg.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert reg.counter("a.b") is counter  # get-or-create
        assert reg.value("a.b") == 5
        assert len(reg) == 1 and "a.b" in reg

    def test_count_hot_path_creates_lazily(self):
        reg = MetricsRegistry()
        reg.count("x")
        reg.count("x", 9)
        assert reg.value("x") == 10
        assert reg.value("never.touched") == 0

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("level").set(3)
        reg.gauge("level").set(7)
        assert reg.value("level") == 7

    def test_histogram_buckets_and_overflow(self):
        hist = HistogramMetric("h", buckets=(1, 4, 16))
        for value in (1, 2, 4, 5, 16, 17, 1000):
            hist.observe(value)
        # bounds are inclusive upper edges; 17 and 1000 overflow
        assert hist.buckets == [1, 2, 2, 2]  # le_1, le_4, le_16, overflow
        assert hist.count == 7
        assert hist.mean == pytest.approx(sum((1, 2, 4, 5, 16, 17, 1000)) / 7)
        assert hist.snapshot()["buckets"] == {
            "le_1": 1, "le_4": 2, "le_16": 2, "overflow": 2,
        }

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            HistogramMetric("h", buckets=(4, 1))

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.count("b", 2)
        reg.gauge("a").set(1.5)
        reg.observe("c", 3)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"]["type"] == "gauge"
        assert snap["b"] == {"type": "counter", "value": 2}
        assert snap["c"]["type"] == "histogram"
        json.dumps(snap)  # JSON-serialisable

    def test_metric_classes_export(self):
        assert CounterMetric("c").kind == "counter"
        assert GaugeMetric("g").kind == "gauge"


# ---------------------------------------------------------------------------
# sampler unit drive (fake pipeline)


class _FakeSched:
    def occupancy(self):
        return 3

    def queue_occupancy(self):
        return {"iq": 3}

    def extra_stats(self):
        return {}


class _FakeStats:
    def __init__(self):
        self.committed = 0
        self.issued = 0
        self.fetched = 0


class _FakePipe:
    """The minimal surface ``IntervalSampler._take`` touches."""

    def __init__(self):
        self.cycle = 0
        self.stats = _FakeStats()
        self.rob = [None] * 5
        self.decode_queue = [None] * 2
        self.scheduler = _FakeSched()
        self.attribution = None

    class _Lsu:
        lq_occupancy = 4
        sq_occupancy = 1

    lsu = _Lsu()


def _drive(pipe, sampler, cycles, ipc=2):
    for _ in range(cycles):
        pipe.cycle += 1
        pipe.stats.committed += ipc
        pipe.stats.issued += ipc
        pipe.stats.fetched += ipc
        sampler.tick(pipe)


class TestSamplerIntervalMath:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            IntervalSampler(0)
        with pytest.raises(ValueError):
            IntervalSampler(-5)

    def test_tail_interval_shorter_than_n(self):
        pipe, sampler = _FakePipe(), IntervalSampler(1000)
        _drive(pipe, sampler, 2500)
        sampler.finalize(pipe)
        cycles = [s["cycle"] for s in sampler.samples]
        assert cycles == [1000, 2000, 2500]
        assert [s["interval"] for s in sampler.samples] == [1000, 1000, 500]
        # deltas cover the interval exactly; cumulative is running total
        assert sampler.samples[-1]["delta"]["committed"] == 1000
        assert sampler.samples[-1]["committed"] == 5000
        assert sampler.samples[-1]["ipc"] == pytest.approx(2.0)
        assert sampler.samples[-1]["ipc_cum"] == pytest.approx(2.0)

    def test_exact_boundary_takes_no_tail_sample(self):
        pipe, sampler = _FakePipe(), IntervalSampler(1000)
        _drive(pipe, sampler, 2000)
        sampler.finalize(pipe)
        assert [s["cycle"] for s in sampler.samples] == [1000, 2000]

    def test_run_shorter_than_interval_still_samples_once(self):
        pipe, sampler = _FakePipe(), IntervalSampler(1000)
        _drive(pipe, sampler, 300)
        sampler.finalize(pipe)
        assert [s["cycle"] for s in sampler.samples] == [300]
        assert sampler.samples[0]["interval"] == 300

    def test_overshoot_does_not_drift_the_grid(self):
        """Regression: a tick that lands past a boundary (drivers that
        tick less than every cycle, e.g. fast-forward chunks) used to
        rebase the next sample at ``overshoot + interval``, permanently
        shifting every later sample off the N*interval grid."""
        pipe, sampler = _FakePipe(), IntervalSampler(1000)
        for jump in (999, 501, 1000, 1000):  # cycle: 999,1500,2500,3500
            pipe.cycle += jump
            pipe.stats.committed += jump
            sampler.tick(pipe)
        pipe.cycle += 500  # 4000: exactly on-grid again
        sampler.tick(pipe)
        assert [s["cycle"] for s in sampler.samples] == [1500, 2500, 3500, 4000]
        # the grid stayed at multiples of 1000: 4000 was still a boundary
        assert sampler._next == 5000

    def test_overshoot_across_multiple_boundaries_takes_one_sample(self):
        pipe, sampler = _FakePipe(), IntervalSampler(100)
        pipe.cycle = 550  # jumped across 5 boundaries at once
        sampler.tick(pipe)
        assert [s["cycle"] for s in sampler.samples] == [550]
        pipe.cycle = 600  # next boundary is 600, not 650
        sampler.tick(pipe)
        assert [s["cycle"] for s in sampler.samples] == [550, 600]

    def test_take_brackets_without_moving_grid(self):
        """Explicit takes (sampled-mode window brackets) are off-grid
        extras: deltas cover the stretch since the previous sample and
        the periodic grid is unaffected."""
        pipe, sampler = _FakePipe(), IntervalSampler(1000)
        _drive(pipe, sampler, 300)
        sample = sampler.take(pipe)
        assert sample["cycle"] == 300
        assert sample["delta"]["committed"] == 600
        _drive(pipe, sampler, 700)  # reaches 1000: still a grid point
        assert [s["cycle"] for s in sampler.samples] == [300, 1000]
        assert sampler.samples[-1]["delta"]["committed"] == 1400

    def test_occupancy_and_queues_snapshot(self):
        pipe, sampler = _FakePipe(), IntervalSampler(10)
        _drive(pipe, sampler, 10)
        sample = sampler.samples[0]
        assert sample["occupancy"] == {
            "rob": 5, "sched": 3, "decode_queue": 2, "lq": 4, "sq": 1,
        }
        assert sample["queues"] == {"iq": 3}


# ---------------------------------------------------------------------------
# sampler on a real pipeline


class TestSamplerEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        trace = get_trace("histogram", 2000, 7)
        metrics = MetricsRegistry()
        sampler = IntervalSampler(1000)
        result = Pipeline(trace, config_for("ballerino"),
                          metrics=metrics, sampler=sampler,
                          attribution=StallAttribution()).run()
        return result, metrics, sampler

    def test_produces_at_least_two_samples(self, run):
        result, _, _ = run
        assert len(result.interval_samples) >= 2
        assert result.sample_interval == 1000

    def test_final_sample_matches_end_of_run_stats(self, run):
        result, _, _ = run
        last = result.interval_samples[-1]
        assert last["cycle"] == result.cycles
        assert last["committed"] == result.stats.committed
        assert last["issued"] == result.stats.issued
        assert last["fetched"] == result.stats.fetched
        assert last["ipc_cum"] == pytest.approx(result.ipc)

    def test_interval_stall_fractions_sum_to_one(self, run):
        result, _, _ = run
        for sample in result.interval_samples:
            total = sum(sample["stall_fractions"].values())
            assert total == pytest.approx(1.0)

    def test_counters_agree_with_sim_stats(self, run):
        result, metrics, _ = run
        assert metrics.value("pipeline.commit_ops") == result.stats.committed
        assert metrics.value("pipeline.issue_ops") == result.stats.issued
        assert metrics.value("pipeline.branch_mispredicts") \
            == result.stats.branch_mispredicts

    def test_samples_round_trip_sim_result(self, run):
        result, _, _ = run
        clone = SimResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone.interval_samples == result.interval_samples
        assert clone.sample_interval == result.sample_interval

    def test_schema_version_bumped_for_samples(self):
        # SimResult grew interval_samples/sample_interval in v3 and
        # sampled/sampling in v4; the version is mixed into cache keys,
        # so old entries self-expire
        assert RESULT_SCHEMA_VERSION == 4


# ---------------------------------------------------------------------------
# neutrality: instruments on == golden cells byte-identical


NEUTRALITY_CELLS = sorted(
    cell for cell in GOLDEN["results"] if cell.startswith("histogram/")
)


class TestNeutrality:
    @pytest.mark.parametrize("cell", NEUTRALITY_CELLS)
    def test_instrumented_run_matches_golden(self, cell):
        workload, arch = cell.split("/")
        trace = get_trace(workload, GOLDEN["ops"], GOLDEN["seed"])
        result = Pipeline(
            trace, config_for(arch),
            tracer=Tracer(), attribution=StallAttribution(),
            metrics=MetricsRegistry(), sampler=IntervalSampler(500),
        ).run()
        expect = GOLDEN["results"][cell]
        assert result.cycles == expect["cycles"], cell
        assert result.stats.committed == expect["committed"], cell
        assert result.stats.issued == expect["issued"], cell
        assert round(result.ipc, 6) == pytest.approx(expect["ipc"]), cell


# ---------------------------------------------------------------------------
# export helpers


class TestExports:
    @pytest.fixture(scope="class")
    def samples(self):
        pipe, sampler = _FakePipe(), IntervalSampler(100)
        _drive(pipe, sampler, 250)
        sampler.finalize(pipe)
        return sampler.samples

    def test_flatten_sample_dots_nested_dicts(self, samples):
        flat = flatten_sample(samples[0])
        assert flat["occupancy.rob"] == 5
        assert flat["queues.iq"] == 3
        assert flat["delta.committed"] == 200
        assert flat["cycle"] == 100
        assert not any(isinstance(v, dict) for v in flat.values())

    def test_samples_to_csv_shape(self, samples):
        text = samples_to_csv(samples)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + len(samples)
        header = lines[0].split(",")
        assert "cycle" in header and "occupancy.rob" in header
        assert len(lines[1].split(",")) == len(header)

    def test_series_extracts_column(self, samples):
        assert series(samples, "cycle") == [100.0, 200.0, 250.0]
        assert series(samples, "occupancy.lq") == [4.0, 4.0, 4.0]

    def test_series_absent_key_is_none_not_zero(self, samples):
        # coercing "absent" to 0.0 would fabricate data points — ragged
        # series (e.g. sampled-mode window annotations) must stay honest
        assert series(samples, "no.such.key") == [None, None, None]

    def test_series_mixed_presence(self, samples):
        ragged = [dict(s) for s in samples]
        ragged[1]["extra"] = 7
        assert series(ragged, "extra") == [None, 7.0, None]

    def test_chrome_counter_events(self, samples):
        events = chrome_counter_events(samples)
        assert events and all(e["ph"] == "C" for e in events)
        names = {e["name"] for e in events}
        assert {"IPC", "occupancy", "lsq", "queues"} <= names
        ipc = [e for e in events if e["name"] == "IPC"]
        assert [e["ts"] for e in ipc] == [100, 200, 250]
