"""Coverage for small paths not exercised elsewhere."""

import pytest

from repro.analysis import ExperimentRunner
from repro.core import config_for, simulate
from repro.core.stats import DelayBreakdown, SimResult, SimStats
from repro.energy import EnergyModel
from repro.isa import OpClass
from repro.workloads import build_trace


class TestTraceStats:
    def test_class_mix(self):
        trace = build_trace("stream_triad", target_ops=1000)
        mix = trace.class_mix()
        assert mix[OpClass.LOAD] == trace.num_loads
        assert mix[OpClass.BRANCH] == trace.num_branches
        assert sum(mix.values()) == len(trace)

    def test_truncated_noop_when_bigger(self):
        trace = build_trace("stream_triad", target_ops=500)
        assert trace.truncated(10_000) is trace

    def test_indexing_and_iteration(self):
        trace = build_trace("stream_triad", target_ops=500)
        assert trace[0].seq == 0
        assert list(trace)[-1].seq == trace[-1].seq


class TestStatsObjects:
    def test_empty_breakdown_averages_are_zero(self):
        breakdown = DelayBreakdown()
        averages = breakdown.averages()
        assert averages["Ld"]["total"] == 0
        assert averages["All"]["decode_to_dispatch"] == 0

    def test_simstats_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_simresult_summary_fields(self):
        trace = build_trace("spill_fill", target_ops=600)
        result = simulate(trace, config_for("ooo"))
        summary = result.summary()
        assert summary["workload"] == "spill_fill"
        assert summary["committed"] == len(trace)
        assert result.seconds > 0


class TestEnergyEdgeCases:
    def test_unknown_events_are_ignored(self):
        trace = build_trace("spill_fill", target_ops=600)
        result = simulate(trace, config_for("ooo"))
        result.stats.energy_events["totally_new_event"] = 10**9
        report = EnergyModel().evaluate(result, config_for("ooo"))
        assert report.total_pj < 1e12  # the bogus event contributed nothing

    def test_voltage_scaling_quadratic(self):
        trace = build_trace("spill_fill", target_ops=600)
        cfg = config_for("ooo")
        result = simulate(trace, cfg)
        model = EnergyModel()
        nominal = model.evaluate(result, cfg, voltage=1.04)
        halved = model.evaluate(result, cfg, voltage=0.52)
        # dynamic part scales 4x down; leakage 2x: total must shrink >2x
        assert halved.total_pj < nominal.total_pj / 2


class TestWrongPathEnergy:
    def test_mispredicts_charge_front_end_energy(self):
        trace = build_trace("branchy_count", target_ops=2500)
        result = simulate(trace, config_for("ooo"))
        assert result.stats.branch_mispredicts > 10
        assert result.stats.energy_events["wrongpath_ops"] > 0
        # wrong-path fetches inflate the fetch count beyond trace length
        assert result.stats.energy_events["fetch"] > result.stats.fetched

    def test_predictable_code_has_little_wrong_path(self):
        trace = build_trace("stream_triad", target_ops=2500)
        result = simulate(trace, config_for("ooo"))
        assert (
            result.stats.energy_events["wrongpath_ops"]
            < 0.1 * result.stats.committed
        )


class TestSeedSensitivity:
    def test_run_seeds_distinct_results(self, tmp_path):
        runner = ExperimentRunner(target_ops=1000, cache_dir=str(tmp_path))
        results = runner.run_seeds(
            "hash_probe", config_for("ooo"), seeds=(1, 2, 3)
        )
        assert len(results) == 3
        assert len({r.cycles for r in results}) >= 2  # data changes timing
        # cached on the second pass
        before = runner.simulations_run
        runner.run_seeds("hash_probe", config_for("ooo"), seeds=(1, 2, 3))
        assert runner.simulations_run == before

    def test_seed_does_not_leak_into_default(self, tmp_path):
        runner = ExperimentRunner(target_ops=1000, seed=7,
                                  cache_dir=str(tmp_path))
        default = runner.run_arch("hash_probe", "ooo")
        seeded = runner.run("hash_probe", config_for("ooo"), seed=7)
        assert seeded.cycles == default.cycles
        assert runner.simulations_run == 1
