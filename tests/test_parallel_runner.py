"""Parallel execution must be byte-identical to serial, and the caches
(result + trace) must survive corruption and concurrent writers."""

import json
import os

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import sweep
from repro.core.config import config_for
from repro.workloads import suite as suite_mod
from repro.workloads.suite import get_trace

WORKLOADS = ("stream_triad", "pointer_chase", "histogram")
ARCHES = ("ooo", "ballerino", "ces")
OPS = 1500


def _runner(tmp_path, sub, **kw):
    return ExperimentRunner(
        target_ops=OPS, cache_dir=str(tmp_path / sub), **kw
    )


def _dumps(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def test_run_many_parallel_matches_serial(tmp_path):
    tasks = [(w, config_for(a)) for w in WORKLOADS for a in ARCHES]
    serial = _runner(tmp_path, "serial").run_many(tasks, jobs=1)
    parallel = _runner(tmp_path, "parallel").run_many(tasks, jobs=4)
    assert [_dumps(r) for r in serial] == [_dumps(r) for r in parallel]


def test_run_many_dedupes_and_orders(tmp_path):
    runner = _runner(tmp_path, "dedupe")
    config = config_for("ooo")
    results = runner.run_many(
        [("histogram", config), ("stream_triad", config),
         ("histogram", config)],
        jobs=1,
    )
    assert runner.simulations_run == 2  # duplicate simulated once
    assert _dumps(results[0]) == _dumps(results[2])
    assert _dumps(results[0]) != _dumps(results[1])


def test_run_many_serves_from_cache(tmp_path):
    tasks = [(w, config_for("ballerino")) for w in WORKLOADS]
    first = _runner(tmp_path, "shared")
    first.run_many(tasks, jobs=2)
    second = _runner(tmp_path, "shared")
    second.run_many(tasks, jobs=2)
    assert second.simulations_run == 0
    assert second.cache_hits == len(tasks)


def test_suite_and_speedup_helpers_parallel_parity(tmp_path):
    config, base = config_for("ballerino"), config_for("inorder")
    serial = _runner(tmp_path, "s")
    parallel = _runner(tmp_path, "p", jobs=3)
    assert {
        name: _dumps(r)
        for name, r in serial.suite_results(config, WORKLOADS).items()
    } == {
        name: _dumps(r)
        for name, r in parallel.suite_results(config, WORKLOADS).items()
    }
    assert serial.speedups_over(config, base, WORKLOADS) == pytest.approx(
        parallel.speedups_over(config, base, WORKLOADS)
    )


def test_run_seeds_parallel(tmp_path):
    config = config_for("ooo")
    serial = _runner(tmp_path, "s").run_seeds("histogram", config, (1, 2, 3))
    parallel = _runner(tmp_path, "p").run_seeds(
        "histogram", config, (1, 2, 3), jobs=3
    )
    assert [_dumps(r) for r in serial] == [_dumps(r) for r in parallel]
    assert len({_dumps(r) for r in serial}) == 3  # seeds actually differ


def test_sweep_jobs_parity(tmp_path):
    axes = {"arch": ["ooo", "ballerino"]}
    serial = sweep(axes, workloads=("histogram",),
                   runner=_runner(tmp_path, "s"))
    parallel = sweep(axes, workloads=("histogram",),
                     runner=_runner(tmp_path, "p"), jobs=2)
    assert [(p.params, p.workload, _dumps(p.result)) for p in serial.points] \
        == [(p.params, p.workload, _dumps(p.result)) for p in parallel.points]


def test_corrupt_cache_entry_is_rerun(tmp_path):
    runner = _runner(tmp_path, "corrupt")
    config = config_for("ooo")
    good = runner.run("histogram", config)
    entry = next(runner.cache_dir.glob("*.json"))
    entry.write_text('{"truncated')
    fresh = _runner(tmp_path, "corrupt")
    again = fresh.run("histogram", config)
    assert fresh.simulations_run == 1  # corrupt entry discarded, re-run
    assert _dumps(again) == _dumps(good)
    # the re-run repaired the disk entry
    assert json.loads(entry.read_text())


def test_zero_byte_cache_entry_is_rerun(tmp_path):
    """A crashed writer can leave an empty file: warn, discard, re-run."""
    runner = _runner(tmp_path, "zero")
    config = config_for("ooo")
    good = runner.run("histogram", config)
    entry = next(runner.cache_dir.glob("*.json"))
    entry.write_bytes(b"")
    fresh = _runner(tmp_path, "zero")
    again = fresh.run("histogram", config)
    assert fresh.cache_warnings == 1
    assert fresh.simulations_run == 1
    assert _dumps(again) == _dumps(good)
    assert json.loads(entry.read_text())  # repaired on the re-run


def test_binary_garbage_cache_entry_is_rerun(tmp_path):
    runner = _runner(tmp_path, "garbage")
    config = config_for("ooo")
    good = runner.run("histogram", config)
    entry = next(runner.cache_dir.glob("*.json"))
    entry.write_bytes(b"\x00\xff\xfe not json at all")
    fresh = _runner(tmp_path, "garbage")
    again = fresh.run("histogram", config)
    assert fresh.cache_warnings == 1
    assert _dumps(again) == _dumps(good)


def test_unreadable_cache_entry_warns_and_reruns(tmp_path, monkeypatch):
    """Permission/IO errors count as a miss but leave the file alone."""
    from pathlib import Path

    runner = _runner(tmp_path, "perm")
    config = config_for("ooo")
    good = runner.run("histogram", config)
    entry = next(runner.cache_dir.glob("*.json"))
    real_read = Path.read_text

    def deny(self, *args, **kwargs):
        if self == entry:
            raise PermissionError(13, "Permission denied")
        return real_read(self, *args, **kwargs)

    monkeypatch.setattr(Path, "read_text", deny)
    fresh = _runner(tmp_path, "perm")
    again = fresh.run("histogram", config)
    assert fresh.cache_warnings == 1
    assert fresh.simulations_run == 1
    assert _dumps(again) == _dumps(good)
    monkeypatch.setattr(Path, "read_text", real_read)
    assert entry.exists()


def test_keyboard_interrupt_keeps_partial_results(tmp_path, monkeypatch):
    """^C mid-campaign: every finished cell stays merged in the cache."""
    import repro.analysis.runner as runner_mod

    tasks = [(w, config_for("ooo")) for w in WORKLOADS]
    real = runner_mod.simulate
    calls = {"n": 0}

    def flaky(trace, config):
        calls["n"] += 1
        if calls["n"] == 2:
            raise KeyboardInterrupt
        return real(trace, config)

    monkeypatch.setattr(runner_mod, "simulate", flaky)
    with pytest.raises(KeyboardInterrupt):
        _runner(tmp_path, "interrupt").run_many(tasks, jobs=1)
    monkeypatch.setattr(runner_mod, "simulate", real)
    resumed = _runner(tmp_path, "interrupt")
    resumed.run_many(tasks, jobs=1)
    assert resumed.cache_hits == 1  # cell finished before ^C was kept
    assert resumed.simulations_run == len(tasks) - 1


def test_mixed_schema_cache_entries_invalidate_cleanly(tmp_path,
                                                       monkeypatch):
    """Entries keyed under an older RESULT_SCHEMA_VERSION are simply
    never looked up again (the version is part of the key): a v4 runner
    re-simulates instead of deserialising a stale shape, and both
    generations coexist in the same cache directory."""
    import repro.analysis.runner as runner_mod
    from repro.core.stats import RESULT_SCHEMA_VERSION, SimResult

    assert RESULT_SCHEMA_VERSION == 4
    config = config_for("ooo")

    # an "old writer": same cache dir, keys computed under schema v3
    monkeypatch.setattr(runner_mod, "RESULT_SCHEMA_VERSION", 3)
    old = _runner(tmp_path, "mixed")
    old_result = old.run("histogram", config)
    assert old.simulations_run == 1
    # strip the v4-era fields so the entry really has the old shape
    entry = next(old.cache_dir.glob("*.json"))
    data = json.loads(entry.read_text())
    data.pop("sampled")
    data.pop("sampling")
    entry.write_text(json.dumps(data))

    monkeypatch.setattr(runner_mod, "RESULT_SCHEMA_VERSION", 4)
    fresh = _runner(tmp_path, "mixed")
    new_result = fresh.run("histogram", config)
    assert fresh.cache_hits == 0  # stale entry never looked up
    assert fresh.simulations_run == 1
    assert len(list(fresh.cache_dir.glob("*.json"))) == 2
    assert _dumps(new_result) == _dumps(old_result)
    # old-shape entries still deserialize via defaults if read directly
    clone = SimResult.from_dict(data)
    assert clone.sampled is False and clone.sampling == {}


def test_no_leftover_tmp_files(tmp_path):
    runner = _runner(tmp_path, "atomic")
    runner.run_many(
        [(w, config_for("ooo")) for w in WORKLOADS], jobs=2
    )
    assert not list(runner.cache_dir.glob("*.tmp"))


# ---------------------------------------------------------------------------
# trace disk cache


@pytest.fixture
def trace_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    get_trace.cache_clear()
    yield tmp_path / "traces"
    get_trace.cache_clear()


def test_trace_cache_roundtrip(trace_cache):
    built = get_trace("histogram", OPS, 7)
    files = list(trace_cache.glob("*.trace"))
    assert len(files) == 1
    get_trace.cache_clear()
    loaded = get_trace("histogram", OPS, 7)  # now served from disk
    assert len(loaded) == len(built)
    assert all(a == b for a, b in zip(built, loaded))


def test_trace_cache_corrupt_entry_rebuilt(trace_cache):
    built = get_trace("histogram", OPS, 7)
    entry = next(trace_cache.glob("*.trace"))
    entry.write_text("not a trace")
    get_trace.cache_clear()
    rebuilt = get_trace("histogram", OPS, 7)
    assert len(rebuilt) == len(built)
    assert all(a == b for a, b in zip(built, rebuilt))


def test_trace_cache_truncated_entry_rebuilt(trace_cache):
    """A trace file cut off mid-write must rebuild, never crash."""
    built = get_trace("histogram", OPS, 7)
    entry = next(trace_cache.glob("*.trace"))
    data = entry.read_bytes()
    entry.write_bytes(data[: len(data) // 2])
    get_trace.cache_clear()
    rebuilt = get_trace("histogram", OPS, 7)
    assert len(rebuilt) == len(built)
    assert all(a == b for a, b in zip(built, rebuilt))
    # the rebuild repaired the disk entry: a reload now serves it intact
    get_trace.cache_clear()
    reloaded = get_trace("histogram", OPS, 7)
    assert all(a == b for a, b in zip(built, reloaded))


def test_trace_cache_zero_byte_entry_rebuilt(trace_cache):
    built = get_trace("histogram", OPS, 7)
    entry = next(trace_cache.glob("*.trace"))
    entry.write_bytes(b"")
    get_trace.cache_clear()
    rebuilt = get_trace("histogram", OPS, 7)
    assert len(rebuilt) == len(built)
    assert all(a == b for a, b in zip(built, rebuilt))


def test_trace_cache_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "")
    get_trace.cache_clear()
    assert suite_mod._trace_cache_dir() is None
    trace = get_trace("histogram", OPS, 7)
    assert len(trace) == OPS
    get_trace.cache_clear()
