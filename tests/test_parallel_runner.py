"""Parallel execution must be byte-identical to serial, and the caches
(result + trace) must survive corruption and concurrent writers."""

import json
import os

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import sweep
from repro.core.config import config_for
from repro.workloads import suite as suite_mod
from repro.workloads.suite import get_trace

WORKLOADS = ("stream_triad", "pointer_chase", "histogram")
ARCHES = ("ooo", "ballerino", "ces")
OPS = 1500


def _runner(tmp_path, sub, **kw):
    return ExperimentRunner(
        target_ops=OPS, cache_dir=str(tmp_path / sub), **kw
    )


def _dumps(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def test_run_many_parallel_matches_serial(tmp_path):
    tasks = [(w, config_for(a)) for w in WORKLOADS for a in ARCHES]
    serial = _runner(tmp_path, "serial").run_many(tasks, jobs=1)
    parallel = _runner(tmp_path, "parallel").run_many(tasks, jobs=4)
    assert [_dumps(r) for r in serial] == [_dumps(r) for r in parallel]


def test_run_many_dedupes_and_orders(tmp_path):
    runner = _runner(tmp_path, "dedupe")
    config = config_for("ooo")
    results = runner.run_many(
        [("histogram", config), ("stream_triad", config),
         ("histogram", config)],
        jobs=1,
    )
    assert runner.simulations_run == 2  # duplicate simulated once
    assert _dumps(results[0]) == _dumps(results[2])
    assert _dumps(results[0]) != _dumps(results[1])


def test_run_many_serves_from_cache(tmp_path):
    tasks = [(w, config_for("ballerino")) for w in WORKLOADS]
    first = _runner(tmp_path, "shared")
    first.run_many(tasks, jobs=2)
    second = _runner(tmp_path, "shared")
    second.run_many(tasks, jobs=2)
    assert second.simulations_run == 0
    assert second.cache_hits == len(tasks)


def test_suite_and_speedup_helpers_parallel_parity(tmp_path):
    config, base = config_for("ballerino"), config_for("inorder")
    serial = _runner(tmp_path, "s")
    parallel = _runner(tmp_path, "p", jobs=3)
    assert {
        name: _dumps(r)
        for name, r in serial.suite_results(config, WORKLOADS).items()
    } == {
        name: _dumps(r)
        for name, r in parallel.suite_results(config, WORKLOADS).items()
    }
    assert serial.speedups_over(config, base, WORKLOADS) == pytest.approx(
        parallel.speedups_over(config, base, WORKLOADS)
    )


def test_run_seeds_parallel(tmp_path):
    config = config_for("ooo")
    serial = _runner(tmp_path, "s").run_seeds("histogram", config, (1, 2, 3))
    parallel = _runner(tmp_path, "p").run_seeds(
        "histogram", config, (1, 2, 3), jobs=3
    )
    assert [_dumps(r) for r in serial] == [_dumps(r) for r in parallel]
    assert len({_dumps(r) for r in serial}) == 3  # seeds actually differ


def test_sweep_jobs_parity(tmp_path):
    axes = {"arch": ["ooo", "ballerino"]}
    serial = sweep(axes, workloads=("histogram",),
                   runner=_runner(tmp_path, "s"))
    parallel = sweep(axes, workloads=("histogram",),
                     runner=_runner(tmp_path, "p"), jobs=2)
    assert [(p.params, p.workload, _dumps(p.result)) for p in serial.points] \
        == [(p.params, p.workload, _dumps(p.result)) for p in parallel.points]


def test_corrupt_cache_entry_is_rerun(tmp_path):
    runner = _runner(tmp_path, "corrupt")
    config = config_for("ooo")
    good = runner.run("histogram", config)
    entry = next(runner.cache_dir.glob("*.json"))
    entry.write_text('{"truncated')
    fresh = _runner(tmp_path, "corrupt")
    again = fresh.run("histogram", config)
    assert fresh.simulations_run == 1  # corrupt entry discarded, re-run
    assert _dumps(again) == _dumps(good)
    # the re-run repaired the disk entry
    assert json.loads(entry.read_text())


def test_no_leftover_tmp_files(tmp_path):
    runner = _runner(tmp_path, "atomic")
    runner.run_many(
        [(w, config_for("ooo")) for w in WORKLOADS], jobs=2
    )
    assert not list(runner.cache_dir.glob("*.tmp"))


# ---------------------------------------------------------------------------
# trace disk cache


@pytest.fixture
def trace_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    get_trace.cache_clear()
    yield tmp_path / "traces"
    get_trace.cache_clear()


def test_trace_cache_roundtrip(trace_cache):
    built = get_trace("histogram", OPS, 7)
    files = list(trace_cache.glob("*.trace"))
    assert len(files) == 1
    get_trace.cache_clear()
    loaded = get_trace("histogram", OPS, 7)  # now served from disk
    assert len(loaded) == len(built)
    assert all(a == b for a, b in zip(built, loaded))


def test_trace_cache_corrupt_entry_rebuilt(trace_cache):
    built = get_trace("histogram", OPS, 7)
    entry = next(trace_cache.glob("*.trace"))
    entry.write_text("not a trace")
    get_trace.cache_clear()
    rebuilt = get_trace("histogram", OPS, 7)
    assert len(rebuilt) == len(built)
    assert all(a == b for a, b in zip(built, rebuilt))


def test_trace_cache_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "")
    get_trace.cache_clear()
    assert suite_mod._trace_cache_dir() is None
    trace = get_trace("histogram", OPS, 7)
    assert len(trace) == OPS
    get_trace.cache_clear()
