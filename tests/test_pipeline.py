"""End-to-end pipeline behaviour on small hand-written programs."""

import pytest

from repro.core import SimulationDeadlock, config_for, simulate
from repro.core.pipeline import Pipeline
from repro.isa import F, R
from repro.workloads import ProgramBuilder, execute


def trace_of(build_fn, name="t", memory=None):
    b = ProgramBuilder(name)
    build_fn(b)
    b.halt()
    return execute(b.build(), memory=memory)


def straight_line_alu(n=40):
    """A loop of eight independent ALU ops per iteration (warm I-cache)."""
    iters = max(1, n // 10)

    def body(b):
        b.li(R[10], iters)
        b.label("top")
        for lane in range(8):
            b.addi(R[1 + lane], R[0], lane)  # independent ops
        b.addi(R[10], R[10], -1)
        b.bne(R[10], R[0], "top")

    return trace_of(body, "independent")


def serial_chain(n=40):
    """A loop whose body is one serial 8-op dependence chain."""
    iters = max(1, n // 10)

    def body(b):
        b.li(R[10], iters)
        b.label("top")
        for _ in range(8):
            b.addi(R[1], R[1], 1)  # fully serial
        b.addi(R[10], R[10], -1)
        b.bne(R[10], R[0], "top")

    return trace_of(body, "serial")


class TestBasicExecution:
    @pytest.mark.parametrize(
        "arch", ["inorder", "ooo", "ces", "casino", "fxa", "ballerino"]
    )
    def test_commits_whole_trace(self, arch):
        trace = straight_line_alu()
        result = simulate(trace, config_for(arch))
        assert result.stats.committed == len(trace)

    def test_independent_ops_run_parallel(self):
        result = simulate(straight_line_alu(3000), config_for("ooo"))
        # a 10-op loop body ending in a taken branch fetches in 3 groups,
        # so steady state approaches ~3.3 IPC; require most of it
        assert result.ipc > 2.0

    def test_serial_chain_slower_than_parallel(self):
        serial = simulate(serial_chain(600), config_for("ooo"))
        parallel = simulate(straight_line_alu(600), config_for("ooo"))
        # the 8-op serial body bounds each iteration to >= 8 cycles
        assert serial.cycles > parallel.cycles
        assert serial.ipc < 1.5

    def test_issue_count_at_least_commits(self):
        trace = straight_line_alu()
        result = simulate(trace, config_for("ooo"))
        assert result.stats.issued >= result.stats.committed


class TestMemoryBehaviour:
    def test_load_latency_visible(self):
        def body(b):
            b.li(R[1], 0x100000)
            b.load(R[2], R[1], 0)  # cold miss
            b.addi(R[3], R[2], 1)  # dependent

        result = simulate(trace_of(body), config_for("ooo"))
        # a cold DRAM miss costs >100 cycles on a ~6-op program
        assert result.cycles > 100

    def test_store_to_load_forwarding_fast_path(self):
        def body(b):
            b.li(R[1], 0x100000)
            b.li(R[2], 7)
            b.li(R[10], 50)
            b.label("top")
            b.store(R[2], R[1], 0)
            b.load(R[3], R[1], 0)  # forwards from the store queue
            b.addi(R[2], R[3], 1)
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        result = simulate(trace_of(body), config_for("ooo"))
        # forwarding (plus MDP after at most one violation) keeps the loop
        # far faster than 50 round trips to DRAM would be
        assert result.stats.order_violations <= 3
        assert result.cycles < 0.2 * 50 * 250

    def test_memory_order_violation_detected_and_recovered(self):
        # a store whose address depends on a slow load, followed by a
        # load to the SAME address: OoO issues the young load early ->
        # violation -> squash -> refetch, still architecturally correct
        def body(b):
            b.li(R[1], 0x100000)  # pointer cell (cold: slow load)
            b.li(R[4], 0x200000)
            for _ in range(6):
                b.load(R[2], R[1], 0)    # slow address producer
                b.add(R[5], R[2], R[4])  # store address = f(load)
                b.store(R[1], R[5], 0)
                b.load(R[6], R[4], 0)    # may alias the store (r2 == 0)
                b.addi(R[4], R[4], 0)

        trace = trace_of(body)
        cfg = config_for("ooo")
        result = simulate(trace, cfg)
        assert result.stats.committed == len(trace)
        assert result.stats.order_violations >= 1
        assert result.stats.flushes >= 1

    def test_mdp_reduces_violations(self):
        from repro.workloads import build_trace

        trace = build_trace("histogram", target_ops=6000)
        with_mdp = simulate(trace, config_for("ooo"))
        import dataclasses

        no_mdp_cfg = dataclasses.replace(config_for("ooo"), mdp_enabled=False,
                                         name="ooo-nomdp")
        without = simulate(trace, no_mdp_cfg)
        assert with_mdp.stats.order_violations < without.stats.order_violations


class TestBranchBehaviour:
    def test_mispredict_costs_cycles(self):
        import random

        rng = random.Random(5)
        values = [rng.randrange(2) for i in range(200)]
        memory = {0x100000 + i * 8: v for i, v in enumerate(values)}

        def body(b):
            b.li(R[1], 0x100000)
            b.li(R[2], 0)
            b.li(R[3], 200)
            b.label("top")
            b.load(R[4], R[1], 0)
            b.beq(R[4], R[0], "skip")
            b.addi(R[5], R[5], 1)
            b.label("skip")
            b.addi(R[1], R[1], 8)
            b.addi(R[2], R[2], 1)
            b.blt(R[2], R[3], "top")

        trace = trace_of(body, memory=memory)
        result = simulate(trace, config_for("ooo"))
        assert result.stats.branch_mispredicts > 10  # random data

        predictable = {0x100000 + i * 8: 1 for i in range(200)}
        trace2 = trace_of(body, memory=predictable)
        result2 = simulate(trace2, config_for("ooo"))
        assert result2.stats.branch_mispredicts < result.stats.branch_mispredicts
        # same committed work, fewer mispredicts -> fewer cycles
        assert result2.cycles < result.cycles

    def test_loop_branch_predicted_after_warmup(self):
        def body(b):
            b.li(R[1], 100)
            b.label("top")
            b.addi(R[1], R[1], -1)
            b.bne(R[1], R[0], "top")

        result = simulate(trace_of(body), config_for("ooo"))
        assert result.stats.branch_mispredicts <= 5


class TestRobustness:
    def test_rob_bounded(self):
        trace = straight_line_alu(200)
        cfg = config_for("ooo")
        pipeline = Pipeline(trace, cfg)
        pipeline.run()
        assert pipeline.rob.max_occupancy <= cfg.rob_size

    def test_max_cycles_guard(self):
        trace = straight_line_alu(200)
        with pytest.raises(SimulationDeadlock):
            simulate(trace, config_for("ooo"), max_cycles=3)

    def test_deterministic_cycles(self):
        trace = straight_line_alu(100)
        a = simulate(trace, config_for("ballerino"))
        b = simulate(trace, config_for("ballerino"))
        assert a.cycles == b.cycles
        assert a.stats.energy_events == b.stats.energy_events

    def test_breakdown_counts_match_commits(self):
        trace = straight_line_alu(100)
        result = simulate(trace, config_for("ooo"))
        assert sum(result.stats.breakdown.counts.values()) == len(trace)

    def test_narrow_widths_run(self):
        trace = straight_line_alu(80)
        for width in (2, 4):
            result = simulate(trace, config_for("ooo", width=width))
            assert result.stats.committed == len(trace)

    def test_wider_is_not_slower(self):
        trace = straight_line_alu(200)
        two = simulate(trace, config_for("ooo", width=2))
        eight = simulate(trace, config_for("ooo", width=8))
        assert eight.cycles <= two.cycles
