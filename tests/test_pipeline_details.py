"""Focused tests for pipeline corner cases and structural limits."""

import dataclasses

import pytest

from repro.core import config_for, simulate
from repro.core.pipeline import Pipeline
from repro.isa import OpClass, R
from repro.workloads import ProgramBuilder, build_trace, execute


def trace_of(build_fn, name="t", memory=None):
    b = ProgramBuilder(name)
    build_fn(b)
    b.halt()
    return execute(b.build(), memory=memory)


class TestStructuralStalls:
    def test_tiny_rob_still_correct_but_slower(self):
        trace = build_trace("matmul_tile", target_ops=2000)
        big = simulate(trace, config_for("ooo"))
        small_cfg = dataclasses.replace(
            config_for("ooo"), rob_size=16, name="ooo-smallrob"
        )
        small = simulate(trace, small_cfg)
        assert small.stats.committed == len(trace)
        assert small.cycles >= big.cycles

    def test_tiny_lq_sq_still_correct(self):
        trace = build_trace("histogram", target_ops=2000)
        cfg = dataclasses.replace(
            config_for("ooo"), lq_size=4, sq_size=2, name="ooo-tinylsq"
        )
        result = simulate(trace, cfg)
        assert result.stats.committed == len(trace)

    def test_physical_register_pressure(self):
        # barely more pregs than architectural state: rename stalls a lot
        trace = build_trace("matmul_tile", target_ops=2000)
        cfg = dataclasses.replace(
            config_for("ooo"), phys_int=40, phys_fp=40, name="ooo-fewpregs"
        )
        result = simulate(trace, cfg)
        assert result.stats.committed == len(trace)
        roomy = simulate(trace, config_for("ooo"))
        assert result.cycles > roomy.cycles

    def test_alloc_queue_bounds_frontend(self):
        trace = build_trace("pointer_chase", target_ops=1000)
        cfg = dataclasses.replace(
            config_for("ooo"), alloc_queue=4, name="ooo-tinyalloc"
        )
        pipeline = Pipeline(trace, cfg)
        result = pipeline.run()
        assert result.stats.committed == len(trace)

    def test_unpipelined_divides_throttle_throughput(self):
        def divs(b):
            b.li(R[10], 60)
            b.li(R[1], 1000)
            b.li(R[2], 7)
            b.label("top")
            b.div(R[3], R[1], R[2])  # 20-cycle unpipelined
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        def adds(b):
            b.li(R[10], 60)
            b.li(R[1], 1000)
            b.li(R[2], 7)
            b.label("top")
            b.add(R[3], R[1], R[2])
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        slow = simulate(trace_of(divs), config_for("ooo"))
        fast = simulate(trace_of(adds), config_for("ooo"))
        # independent divides still serialise on the single divider
        assert slow.cycles > fast.cycles + 60 * 10


class TestFrontEndDetails:
    def test_icache_cold_miss_stalls_fetch(self):
        def body(b):
            for i in range(64):  # 64 static ops ~ 4+ I-cache lines
                b.addi(R[1 + i % 8], R[0], i)

        result = simulate(trace_of(body), config_for("ooo"))
        # the first line's DRAM fetch dominates this tiny program
        assert result.cycles > 150

    def test_btb_miss_penalty_smaller_than_mispredict(self):
        # an always-taken loop branch: direction predicts fine quickly,
        # but the first encounter pays a BTB-fill bubble, not a flush
        def body(b):
            b.li(R[10], 50)
            b.label("top")
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        result = simulate(trace_of(body), config_for("ooo"))
        assert result.stats.branch_mispredicts <= 3

    def test_jump_heavy_code_is_cheap_after_btb_warm(self):
        def body(b):
            b.li(R[10], 80)
            b.label("top")
            b.jmp("next")
            b.label("next")
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        result = simulate(trace_of(body), config_for("ooo"))
        assert result.ipc > 0.4


class TestClassification:
    def test_ld_ldc_rst_taxonomy(self):
        # load -> consumer -> independent op: classes Ld, LdC, Rst
        def body(b):
            b.li(R[1], 0x2000000)
            b.li(R[10], 30)
            b.label("top")
            b.load(R[2], R[1], 0)     # Ld (cold line each iteration)
            b.addi(R[3], R[2], 1)     # LdC: direct consumer
            b.add(R[4], R[3], R[3])   # LdC: transitive consumer
            b.addi(R[5], R[5], 1)     # Rst: independent
            b.addi(R[1], R[1], 64)
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        trace = trace_of(body)
        result = simulate(trace, config_for("ooo"))
        counts = result.stats.breakdown.counts
        assert counts["Ld"] == trace.num_loads
        assert counts["LdC"] > 0
        assert counts["Rst"] > 0
        # the two consumers per iteration should mostly classify LdC
        assert counts["LdC"] >= trace.num_loads

    def test_completed_load_clears_taint(self):
        # consumer renamed long after the load completes must be Rst
        def body(b):
            b.li(R[1], 0x2000000)
            b.load(R[2], R[1], 0)
            for _ in range(200):  # plenty of time for the load to finish
                b.addi(R[5], R[5], 1)
            b.addi(R[3], R[2], 1)  # consumer of a long-completed load

        trace = trace_of(body)
        result = simulate(trace, config_for("ooo"))
        # exactly one load; its consumer should NOT be tainted by then
        counts = result.stats.breakdown.counts
        assert counts["LdC"] == 0


class TestNarrowWidths:
    @pytest.mark.parametrize("arch", ["inorder", "ooo", "ces", "casino",
                                      "fxa", "ballerino", "dnb"])
    def test_2wide_configs_run(self, arch):
        trace = build_trace("histogram", target_ops=1200)
        result = simulate(trace, config_for(arch, width=2))
        assert result.stats.committed == len(trace)

    @pytest.mark.parametrize("arch", ["casino", "ballerino"])
    def test_4wide_configs_run(self, arch):
        trace = build_trace("mixed_int_fp", target_ops=1200)
        result = simulate(trace, config_for(arch, width=4))
        assert result.stats.committed == len(trace)

    def test_10wide_config_runs(self):
        trace = build_trace("dag_wide", target_ops=1200)
        result = simulate(trace, config_for("ballerino", width=10))
        assert result.stats.committed == len(trace)


class TestPortPressure:
    def test_agu_ports_bound_memory_issue(self):
        result_cycles = {}
        for width in (2, 8):
            trace = build_trace("spill_fill", target_ops=2000)
            result = simulate(trace, config_for("ooo", width=width))
            result_cycles[width] = result.cycles
        # 2-wide has one AGU port vs four: memory-heavy code suffers
        assert result_cycles[2] > result_cycles[8]

    def test_issue_never_exceeds_width(self):
        trace = build_trace("matmul_tile", target_ops=1500)
        cfg = config_for("ooo")
        pipeline = Pipeline(trace, cfg)
        per_cycle = []
        original = pipeline.scheduler.select

        def spy(cycle):
            out = original(cycle)
            per_cycle.append(len(out))
            return out

        pipeline.scheduler.select = spy
        pipeline.run()
        assert max(per_cycle) <= cfg.issue_width
