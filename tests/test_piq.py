"""Unit tests for the shareable P-IQ (paper §IV-D, Figure 9)."""

import pytest

from repro.core.ifop import InFlightOp
from repro.isa import R, opcode
from repro.isa.instruction import DynOp
from repro.sched.piq import SharedPIQ


def op(seq):
    dyn = DynOp(seq=seq, pc=0, opcode=opcode("add"), dest=R[1], srcs=(R[2], R[3]))
    return InFlightOp(seq=seq, op=dyn, decode_cycle=0)


class TestNormalMode:
    def test_fifo_order(self):
        piq = SharedPIQ(8)
        for i in range(3):
            piq.append(op(i), 0)
        assert piq.occupancy() == 3
        heads = piq.active_heads()
        assert len(heads) == 1 and heads[0][1].seq == 0
        assert piq.pop_head(0).seq == 0
        assert piq.active_heads()[0][1].seq == 1

    def test_capacity(self):
        piq = SharedPIQ(4)
        for i in range(4):
            assert piq.has_space(0)
            piq.append(op(i), 0)
        assert not piq.has_space(0)
        with pytest.raises(RuntimeError):
            piq.append(op(9), 0)

    def test_empty_flag(self):
        piq = SharedPIQ(4)
        assert piq.empty
        piq.append(op(0), 0)
        assert not piq.empty
        piq.pop_head(0)
        assert piq.empty


class TestSharingEligibility:
    def test_empty_queue_not_shareable(self):
        assert not SharedPIQ(8).shareable()

    def test_half_full_is_shareable(self):
        piq = SharedPIQ(8)
        for i in range(4):
            piq.append(op(i), 0)
        assert piq.shareable()

    def test_more_than_half_not_shareable(self):
        piq = SharedPIQ(8)
        for i in range(5):
            piq.append(op(i), 0)
        assert not piq.shareable()

    def test_ideal_mode_ignores_pointer_constraint(self):
        piq = SharedPIQ(8, ideal=True)
        for i in range(5):
            piq.append(op(i), 0)
        assert piq.shareable()

    def test_already_sharing_not_shareable(self):
        piq = SharedPIQ(8)
        piq.append(op(0), 0)
        piq.activate_sharing()
        assert not piq.shareable()

    def test_activate_on_ineligible_raises(self):
        piq = SharedPIQ(8)
        for i in range(5):
            piq.append(op(i), 0)
        with pytest.raises(RuntimeError):
            piq.activate_sharing()


class TestSharingMode:
    def _shared(self, size=8):
        piq = SharedPIQ(size)
        piq.append(op(0), 0)
        piq.append(op(1), 0)
        piq.activate_sharing()
        piq.append(op(10), 1)
        piq.append(op(11), 1)
        return piq

    def test_partition_capacity_is_half(self):
        piq = self._shared(8)
        piq.append(op(12), 1)
        piq.append(op(13), 1)
        assert not piq.has_space(1)  # 4 = 8/2 entries used
        assert piq.has_space(0)

    def test_single_active_head(self):
        piq = self._shared()
        heads = piq.active_heads()
        assert len(heads) == 1

    def test_head_stays_after_issue(self):
        piq = self._shared()
        piq.active = 0
        piq.pop_head(0)
        piq.end_cycle(issued_partition=0)
        assert piq.active == 0

    def test_head_toggles_when_stalled(self):
        piq = self._shared()
        piq.active = 0
        piq.end_cycle(issued_partition=None)
        assert piq.active == 1
        piq.end_cycle(issued_partition=None)
        assert piq.active == 0

    def test_ideal_examines_both_heads(self):
        piq = SharedPIQ(8, ideal=True)
        piq.append(op(0), 0)
        piq.activate_sharing()
        piq.append(op(10), 1)
        assert len(piq.active_heads()) == 2

    def test_collapse_when_partition_drains(self):
        piq = self._shared()
        piq.pop_head(1)
        piq.pop_head(1)
        assert not piq.sharing  # second partition drained
        assert piq.occupancy() == 2

    def test_collapse_when_first_partition_drains(self):
        piq = self._shared()
        piq.pop_head(0)
        piq.pop_head(0)
        assert not piq.sharing
        assert piq.active_heads()[0][1].seq == 10

    def test_drained_active_partition_yields_other_head(self):
        piq = SharedPIQ(8)
        piq.append(op(0), 0)
        piq.activate_sharing()
        piq.append(op(10), 1)
        piq.active = 1
        piq.pop_head(1)  # partition 1 drains -> collapse to normal
        heads = piq.active_heads()
        assert heads and heads[0][1].seq == 0


class TestFlush:
    def test_flush_tail_entries(self):
        piq = SharedPIQ(8)
        for i in (1, 3, 5):
            piq.append(op(i), 0)
        piq.flush_from(3)
        assert piq.occupancy() == 1
        assert piq.active_heads()[0][1].seq == 1

    def test_flush_collapses_sharing(self):
        piq = SharedPIQ(8)
        piq.append(op(0), 0)
        piq.activate_sharing()
        piq.append(op(10), 1)
        piq.flush_from(10)
        assert not piq.sharing
        assert piq.occupancy() == 1

    def test_flush_everything(self):
        piq = SharedPIQ(8)
        piq.append(op(0), 0)
        piq.flush_from(0)
        assert piq.empty
