"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plotting import bar_chart, stacked_bars


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart({"a": 1.0, "bb": 2.0}, title="T", width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ")
        assert lines[2].startswith("bb")
        # the bigger value gets the full-width bar
        assert lines[2].count("#") == 10
        assert lines[1].count("#") == 5

    def test_values_printed(self):
        text = bar_chart({"x": 1.234}, fmt="{:.1f}")
        assert "1.2" in text

    def test_reference_marker(self):
        text = bar_chart({"a": 0.5, "b": 1.0}, reference=1.0, width=10)
        assert "|" in text.splitlines()[0]

    def test_empty_values(self):
        assert bar_chart({}, title="nothing") == "nothing"

    def test_zero_peak_safe(self):
        text = bar_chart({"a": 0.0})
        assert "a" in text


class TestStackedBars:
    def test_render_with_legend(self):
        text = stacked_bars(
            ["x", "y"],
            {"alpha": [1, 2], "beta": [2, 1]},
            title="S",
            width=12,
        )
        lines = text.splitlines()
        assert lines[0] == "S"
        assert "A=alpha" in lines[-1]
        assert "B=beta" in lines[-1]
        # both bars have the same total -> roughly equal length
        assert abs(len(lines[1]) - len(lines[2])) <= 1

    def test_duplicate_initials_disambiguated(self):
        text = stacked_bars(["x"], {"steer": [1], "schedule": [1]})
        legend = text.splitlines()[-1]
        assert "S=steer" in legend
        assert "C=schedule" in legend
