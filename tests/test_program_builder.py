"""Unit tests for the program-construction DSL."""

import pytest

from repro.isa import R, F
from repro.workloads import Program, ProgramBuilder


def simple_loop(n=3) -> Program:
    b = ProgramBuilder("loop")
    b.li(R[1], n)
    b.label("top")
    b.addi(R[1], R[1], -1)
    b.bne(R[1], R[0], "top")
    b.halt()
    return b.build()


class TestProgramBuilder:
    def test_pcs_are_sequential(self):
        program = simple_loop()
        for i, inst in enumerate(program.instructions):
            assert inst.pc == i

    def test_label_resolution(self):
        program = simple_loop()
        assert program.target_pc("top") == 1
        branch = program.instructions[2]
        assert branch.target == "top"

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_undefined_label_rejected(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        b.halt()
        with pytest.raises(ValueError, match="undefined"):
            b.build()

    def test_store_operand_order(self):
        # store srcs = (value, base): the base must be the LAST source,
        # which is what the executor's address calculation assumes
        b = ProgramBuilder()
        b.store(R[3], R[4], 8)
        b.halt()
        inst = b.build().instructions[0]
        assert inst.srcs == (R[3], R[4])
        assert inst.imm == 8

    def test_load_operands(self):
        b = ProgramBuilder()
        b.load(R[1], R[2], 16)
        b.halt()
        inst = b.build().instructions[0]
        assert inst.dest == R[1]
        assert inst.srcs == (R[2],)
        assert inst.imm == 16

    def test_fp_ops_use_fp_registers(self):
        b = ProgramBuilder()
        b.fadd(F[1], F[2], F[3])
        b.halt()
        inst = b.build().instructions[0]
        assert inst.dest == F[1]
        assert inst.srcs == (F[2], F[3])

    def test_disassemble_lists_labels(self):
        text = simple_loop().disassemble()
        assert "top:" in text
        assert "bne" in text

    def test_program_len(self):
        assert len(simple_loop()) == 4

    def test_three_operand_forms(self):
        b = ProgramBuilder()
        b.add(R[1], R[2], R[3])
        b.sub(R[4], R[5], R[6])
        b.mul(R[7], R[8], R[9])
        b.halt()
        program = b.build()
        assert [i.opcode.name for i in program.instructions[:3]] == [
            "add", "sub", "mul",
        ]
