"""Prometheus text exposition: rendering, escaping, linting."""

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import (escape_label_value, lint_prometheus,
                                        main, render_prometheus,
                                        sanitize_metric_name)


def _snapshot():
    registry = MetricsRegistry()
    registry.count("serve.jobs.done", 3)
    registry.set_gauge("serve.queue.depth.batch", 2)
    registry.histogram("serve.job.seconds", buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.5, 1.8, 9.0):
        registry.observe("serve.job.seconds", value)
    return registry.snapshot()


class TestRender:
    def test_counters_get_total_suffix_and_type(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_serve_jobs_done_total counter" in text
        assert "repro_serve_jobs_done_total 3" in text

    def test_gauges_render_plain(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_serve_queue_depth_batch gauge" in text
        assert "repro_serve_queue_depth_batch 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(_snapshot())
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_serve_job_seconds_bucket")]
        values = [float(l.rsplit(" ", 1)[1]) for l in lines]
        assert values == sorted(values)  # monotone by construction
        assert 'le="+Inf"} 4' in lines[-1]
        assert "repro_serve_job_seconds_count 4" in text
        assert "repro_serve_job_seconds_sum" in text

    def test_labels_escaped(self):
        text = render_prometheus(
            _snapshot(), labels={"config": 'o"o\\o\n'})
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert lint_prometheus(text) == []

    def test_rendered_output_lints_clean(self):
        assert lint_prometheus(render_prometheus(_snapshot())) == []

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("serve.queue.depth") == \
            "repro_serve_queue_depth"
        assert sanitize_metric_name("weird-name!") == "repro_weird_name_"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestLint:
    def test_sample_without_type_flagged(self):
        errs = lint_prometheus("repro_thing 1\n")
        assert any("TYPE" in e for e in errs)

    def test_duplicate_type_flagged(self):
        text = ("# TYPE repro_x gauge\n# TYPE repro_x gauge\nrepro_x 1\n")
        errs = lint_prometheus(text)
        assert any("duplicate" in e for e in errs)

    def test_unparseable_value_flagged(self):
        text = "# TYPE repro_x gauge\nrepro_x banana\n"
        assert lint_prometheus(text)

    def test_empty_exposition_flagged(self):
        assert lint_prometheus("") == ["no samples in exposition"]

    def test_bucket_suffix_maps_to_family_type(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="+Inf"} 1\n'
                "repro_h_sum 0.5\nrepro_h_count 1\n")
        assert lint_prometheus(text) == []


class TestCliLint:
    def test_main_ok_on_clean_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        path.write_text(render_prometheus(_snapshot()))
        assert main([str(path)]) == 0
        assert "prometheus-lint: OK" in capsys.readouterr().out

    def test_main_fails_on_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.prom"
        path.write_text("no_type_metric 1\n")
        assert main([str(path)]) == 1
        assert capsys.readouterr().err

    def test_main_missing_file_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "absent.prom")]) == 2


class TestDaemonEndpoint:
    def test_metricsz_prometheus_lints_clean(self, tmp_path, monkeypatch):
        import urllib.request

        from repro.serve.daemon import ServeDaemon
        from repro.workloads.suite import get_trace

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
        get_trace.cache_clear()
        daemon = ServeDaemon(
            str(tmp_path / "queue"), workers=1,
            runner_kwargs=dict(target_ops=300,
                               cache_dir=str(tmp_path / "cache"),
                               run_log=""))
        daemon.start()
        try:
            from repro.serve.client import ServeClient

            client = ServeClient(daemon.url)
            job = client.submit(
                cells=[{"workload": "dotprod", "arch": "ooo", "width": 4}])
            client.wait(job["job_id"], timeout=120)
            url = daemon.url + "/metricsz?format=prometheus"
            with urllib.request.urlopen(url) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                text = response.read().decode()
        finally:
            daemon.stop(timeout=30)
            get_trace.cache_clear()
        assert lint_prometheus(text) == []
        assert "repro_serve_jobs_done_total 1" in text
