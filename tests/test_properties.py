"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReadyFile, config_for, simulate
from repro.core.ifop import InFlightOp
from repro.isa import R, opcode
from repro.isa.instruction import DynOp
from repro.memory import Cache, MSHRFile
from repro.sched.piq import SharedPIQ
from repro.workloads import ProgramBuilder, execute


def ifop(seq):
    dyn = DynOp(seq=seq, pc=0, opcode=opcode("add"), dest=R[1], srcs=(R[2],))
    return InFlightOp(seq=seq, op=dyn, decode_cycle=0)


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = Cache("t", size_bytes=2048, assoc=2, latency=1)
        capacity = cache.num_sets * cache.assoc
        for line in lines:
            cache.fill(line, 0)
            assert cache.resident_lines() <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_hit_after_fill_until_evicted(self, lines):
        """A just-filled line is always immediately present."""
        cache = Cache("t", size_bytes=4096, assoc=4, latency=1)
        for line in lines:
            cache.fill(line, 0)
            assert cache.probe(line) is not None

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=2,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_stats_consistency(self, lines):
        cache = Cache("t", size_bytes=2048, assoc=2, latency=1)
        for line in lines:
            if cache.lookup(line) is None:
                cache.fill(line, 0)
        assert cache.stats.hits + cache.stats.misses == len(lines)


class TestMSHRProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),  # line
                st.integers(min_value=1, max_value=100),  # extra latency
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_at_most_capacity_misses_in_service(self, accesses):
        """When the file is full, a new miss must start no earlier than the
        earliest outstanding completion — i.e. at most ``capacity`` misses
        are ever *in service* simultaneously."""
        mshr = MSHRFile(4)
        cycle = 0
        service_intervals = []  # (start, completion)
        for line, latency in accesses:
            cycle += 1
            if mshr.lookup(line, cycle) is None:
                start = mshr.earliest_free(cycle)
                completion = start + latency
                mshr.allocate(line, completion)
                service_intervals.append((start, completion))
        # sweep: max instantaneous concurrency over [start, completion)
        events = []
        for start, completion in service_intervals:
            events.append((start, 1))
            events.append((completion, -1))
        events.sort()  # completions (-1) sort before starts (+1) at ties
        concurrent = peak = 0
        for _, delta in events:
            concurrent += delta
            peak = max(peak, concurrent)
        assert peak <= 4


class TestReadyFileProperties:
    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 100)),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_ready_iff_marked(self, events):
        ready = ReadyFile(32)
        expected = {}
        for preg, cycle in events:
            if cycle % 3 == 0:
                ready.mark_pending(preg)
                expected[preg] = None
            else:
                ready.mark_ready(preg, cycle)
                expected[preg] = cycle
        horizon = 1000
        for preg, cyc in expected.items():
            assert ready.is_ready(preg, horizon) == (cyc is not None)


class TestSharedPIQProperties:
    @given(st.lists(st.sampled_from(["push0", "push1", "pop", "share"]),
                    min_size=1, max_size=120),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_random_operations_keep_invariants(self, ops, ideal):
        piq = SharedPIQ(8, ideal=ideal)
        seq = 0
        for action in ops:
            if action == "share" and piq.shareable():
                piq.activate_sharing()
            elif action in ("push0", "push1"):
                partition = 0 if action == "push0" else 1
                if piq.has_space(partition):
                    piq.append(ifop(seq), partition)
                    seq += 1
            elif action == "pop" and not piq.empty:
                heads = piq.active_heads()
                if heads:
                    partition, _ = heads[0]
                    piq.pop_head(partition)
            # invariants
            assert piq.occupancy() <= piq.size
            assert 1 <= len(piq.partitions) <= 2
            for queue in piq.partitions:
                seqs = [op.seq for op in queue]
                assert seqs == sorted(seqs)  # FIFO order per partition
            if piq.sharing:
                for queue in piq.partitions:
                    assert len(queue) <= piq.size // 2 or ideal

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30),
           st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_flush_removes_exactly_younger(self, seqs, cut):
        piq = SharedPIQ(64)
        for s in sorted(set(seqs)):
            piq.append(ifop(s), 0)
        piq.flush_from(cut)
        remaining = [op.seq for op in piq.partitions[0]]
        assert remaining == [s for s in sorted(set(seqs)) if s < cut]


class TestEndToEndProperties:
    @staticmethod
    def random_program(rng: random.Random, length: int):
        """A random but always-halting straight-line-plus-loop program."""
        b = ProgramBuilder("rand")
        b.li(R[10], rng.randrange(3, 9))
        b.li(R[11], 0x100000)
        b.label("top")
        for _ in range(length):
            choice = rng.randrange(5)
            rd = R[1 + rng.randrange(8)]
            ra = R[1 + rng.randrange(8)]
            rb = R[1 + rng.randrange(8)]
            if choice == 0:
                b.add(rd, ra, rb)
            elif choice == 1:
                b.mul(rd, ra, rb)
            elif choice == 2:
                b.load(rd, R[11], 8 * rng.randrange(8))
            elif choice == 3:
                b.store(ra, R[11], 8 * rng.randrange(8))
            else:
                b.xor(rd, ra, rb)
        b.addi(R[10], R[10], -1)
        b.bne(R[10], R[0], "top")
        b.halt()
        return b.build()

    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from(["inorder", "ooo", "ces", "casino", "fxa",
                            "ballerino"]))
    @settings(max_examples=20, deadline=None)
    def test_any_program_commits_fully_on_any_scheduler(self, seed, arch):
        rng = random.Random(seed)
        program = self.random_program(rng, length=rng.randrange(4, 16))
        trace = execute(program)
        result = simulate(trace, config_for(arch))
        assert result.stats.committed == len(trace)
        assert result.stats.issued >= result.stats.committed
        assert sum(result.stats.breakdown.counts.values()) == len(trace)
