"""Minimized regression tests for bugs flushed out by the fuzzer.

Each test pins one of the bugs found by ``repro fuzz`` / the per-cycle
invariant checker (see docs/correctness.md for the full write-ups):

1. LFST ``reserved`` bit survived the squash of the MDA-steered load.
2. ``SharedPIQ`` collapse left stale partition indices in the steering
   scoreboard, the LFST steering hints, and the select loop's
   issued-partition record.
3. ``SteeringScoreboard`` reservation survived the squash of the
   reserving consumer.
4. Ideal-sharing ``has_space`` applied the equal-halves cap, wedging the
   resident chain and (symmetrically) letting the other partition
   overflow total capacity.
5. An SSID merge between a store's dispatch and its issue orphaned its
   LFST entry, imposing false dependences forever after.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ifop import InFlightOp
from repro.isa import R, opcode
from repro.isa.instruction import DynOp
from repro.lsq.mdp import StoreSetPredictor
from repro.sched.piq import SharedPIQ
from repro.sched.steering import SteerInfo, SteeringScoreboard


def ifop(seq):
    dyn = DynOp(seq=seq, pc=0, opcode=opcode("add"), dest=R[1],
                srcs=(R[2], R[3]))
    return InFlightOp(seq=seq, op=dyn, decode_cycle=0)


def push(piq, seq, partition):
    """Append like the dispatch path does: record the partition on the op."""
    op = ifop(seq)
    op.iq_partition = partition
    piq.append(op, partition)


class TestBug1StaleLFSTReservation:
    """Squash of the MDA-steered load must release the LFST reservation."""

    def _predictor_with_steered_store(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(load_pc=100, store_pc=200)
        mdp.store_dispatched(200, seq=5)
        mdp.record_store_steering(200, 5, iq_index=2, partition=1)
        return mdp

    def test_load_squash_releases_reservation(self):
        mdp = self._predictor_with_steered_store()
        mdp.reserve_steering(100, load_seq=9)
        assert mdp.steering_hint(100) is None  # reserved for seq 9
        mdp.flush_from(9)  # squash the load; the store (seq 5) survives
        hint = mdp.steering_hint(100)
        assert hint is not None and hint.iq_index == 2
        assert not hint.reserved and hint.reserved_by == -1

    def test_store_squash_invalidates_entry(self):
        mdp = self._predictor_with_steered_store()
        mdp.reserve_steering(100, load_seq=9)
        mdp.flush_from(5)  # the store itself goes
        assert mdp.steering_hint(100) is None
        assert mdp.load_dispatched(100) is None
        mdp.debug_check({})  # no invalid-but-reserved entries left

    def test_flush_older_than_both_keeps_reservation(self):
        mdp = self._predictor_with_steered_store()
        mdp.reserve_steering(100, load_seq=9)
        mdp.flush_from(10)  # younger than load and store: nothing changes
        assert mdp.steering_hint(100) is None  # still reserved


class TestBug2CollapseRemap:
    """Partition indices captured pre-collapse must be translated."""

    def _sharing_piq(self):
        piq = SharedPIQ(8)
        push(piq, 0, 0)
        piq.activate_sharing()
        push(piq, 1, 1)
        push(piq, 2, 1)
        return piq

    def test_collapse_reports_remap_and_moves_chain(self):
        piq = self._sharing_piq()
        assert piq.pop_head(0, collapse=False).seq == 0
        remap = piq.collapse_idle()
        assert remap == {1: 0}
        assert not piq.sharing
        assert [op.seq for op in piq.partitions[0]] == [1, 2]
        assert all(op.iq_partition == 0 for op in piq.partitions[0])
        piq.debug_check()

    def test_flush_collapse_reports_remap(self):
        piq = self._sharing_piq()
        push(piq, 3, 0)  # partition 0: [0, 3], partition 1: [1, 2]
        remap = piq.flush_from(1)  # drains partition 1 entirely
        assert remap == {1: 0}
        assert [op.seq for op in piq.partitions[0]] == [0]

    def test_scoreboard_remap_translates_only_that_iq(self):
        steer = SteeringScoreboard()
        steer.set(7, SteerInfo(iq=3, partition=1, owner_seq=2))
        steer.set(8, SteerInfo(iq=4, partition=1, owner_seq=3))
        steer.remap_partition(3, {1: 0})
        assert steer.get(7).partition == 0
        assert steer.get(8).partition == 1  # other queue untouched

    def test_lfst_remap_translates_steering_hint(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(load_pc=100, store_pc=200)
        mdp.store_dispatched(200, seq=5)
        mdp.record_store_steering(200, 5, iq_index=3, partition=1)
        mdp.remap_steering(3, {1: 0})
        assert mdp.steering_hint(100).partition == 0
        mdp.remap_steering(6, {1: 0})  # other queue: no effect
        assert mdp.steering_hint(100).partition == 0


class TestBug3ScoreboardReservationSquash:
    """Consumer squash must release the scoreboard Reserved bit."""

    def test_consumer_squash_releases(self):
        steer = SteeringScoreboard()
        steer.set(5, SteerInfo(iq=0, partition=0, owner_seq=3))
        steer.reserve(5, by_seq=10)
        steer.flush_from(8)  # squashes the consumer (10), not producer (3)
        info = steer.get(5)
        assert info is not None
        assert not info.reserved and info.reserved_by == -1

    def test_producer_squash_drops_entry(self):
        steer = SteeringScoreboard()
        steer.set(5, SteerInfo(iq=0, partition=0, owner_seq=3))
        steer.reserve(5, by_seq=10)
        steer.flush_from(3)
        assert steer.get(5) is None

    def test_flush_younger_than_both_keeps_reservation(self):
        steer = SteeringScoreboard()
        steer.set(5, SteerInfo(iq=0, partition=0, owner_seq=3))
        steer.reserve(5, by_seq=10)
        steer.flush_from(11)
        assert steer.get(5).reserved and steer.get(5).reserved_by == 10


class TestBug4IdealSharingCapacity:
    """Ideal sharing lifts the equal-halves cap but not total capacity."""

    def test_resident_chain_can_grow_past_half(self):
        piq = SharedPIQ(8, ideal=True)
        for i in range(6):
            push(piq, i, 0)
        piq.activate_sharing()  # ideal: allowed with > size/2 resident
        assert piq.has_space(0)  # the buggy half cap said no space here
        push(piq, 6, 0)
        push(piq, 7, 1)
        piq.debug_check()

    def test_total_capacity_still_enforced(self):
        piq = SharedPIQ(8, ideal=True)
        for i in range(6):
            push(piq, i, 0)
        piq.activate_sharing()
        push(piq, 6, 1)
        push(piq, 7, 1)
        # the buggy per-partition cap (2 < 4) would admit a 9th entry
        assert not piq.has_space(0)
        assert not piq.has_space(1)

    def test_real_sharing_keeps_half_cap(self):
        piq = SharedPIQ(8)
        for i in range(4):
            push(piq, i, 0)
        piq.activate_sharing()
        for i in range(4, 8):
            if len(piq.partitions[1]) < 4:
                push(piq, i, 1)
        assert not piq.has_space(1)  # half cap binds in non-ideal mode


class TestBug5SSIDMergeOrphan:
    """An SSID merge must not orphan the in-flight store's LFST entry."""

    def _merged_predictor(self):
        mdp = StoreSetPredictor()
        mdp.train_violation(load_pc=1000, store_pc=2000)  # set 0
        mdp.train_violation(load_pc=1001, store_pc=2001)  # set 1
        mdp.store_dispatched(2001, seq=50)  # LFST[1] := seq 50
        # merge rule: pc 2001 moves to set 0 while seq 50 is in flight
        mdp.train_violation(load_pc=1000, store_pc=2001)
        return mdp

    def test_issue_releases_orphaned_entry(self):
        mdp = self._merged_predictor()
        mdp.store_issued(2001, seq=50)
        # the old lookup (by current SSID) missed LFST[1]: seq 50 kept
        # imposing dependences after it left the window
        assert mdp.load_dispatched(1001) is None
        mdp.debug_check({})  # no valid entry references the departed store

    def test_flush_releases_orphaned_entry(self):
        mdp = self._merged_predictor()
        mdp.flush_store(2001, seq=50)
        assert mdp.load_dispatched(1001) is None
        mdp.debug_check({})


class TestFlushConsistencyProperties:
    """After ``flush_from(cut)`` nothing may reference a seq >= cut."""

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 99),
                              st.integers(0, 3), st.booleans()),
                    max_size=40),
           st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_scoreboard_flush(self, entries, cut):
        steer = SteeringScoreboard()
        for preg, seq, iq, reserve in entries:
            steer.set(preg, SteerInfo(iq=iq, partition=iq % 2,
                                      owner_seq=seq))
            if reserve:
                steer.reserve(preg, by_seq=seq + 7)
        steer.flush_from(cut)
        for _, info in steer.items():
            assert info.owner_seq < cut
            if info.reserved:
                assert 0 <= info.reserved_by < cut

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 99),
                              st.booleans()),
                    max_size=30),
           st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_lfst_flush(self, stores, cut):
        mdp = StoreSetPredictor()
        for index, (set_index, seq, reserve) in enumerate(stores):
            load_pc, store_pc = 3000 + set_index, 4000 + set_index
            mdp.train_violation(load_pc, store_pc)
            mdp.store_dispatched(store_pc, seq)
            mdp.record_store_steering(store_pc, seq, iq_index=index % 4)
            if reserve:
                mdp.reserve_steering(load_pc, load_seq=seq + 3)
        mdp.flush_from(cut)
        for entry in mdp._lfst.values():
            if entry.valid:
                assert entry.store_seq < cut
            else:
                assert not entry.reserved
            if entry.reserved:
                assert 0 <= entry.reserved_by < cut
