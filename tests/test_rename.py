"""Tests for register renaming: RAT, free lists, recovery."""

import pytest

from repro.isa import DynOp, F, R, ZERO, opcode
from repro.rename import OutOfPhysicalRegisters, RenameUnit


def dynop(name="add", dest=None, srcs=(), seq=0):
    return DynOp(seq=seq, pc=0, opcode=opcode(name), dest=dest, srcs=srcs)


class TestBasicRenaming:
    def test_initial_identity_mapping(self):
        rn = RenameUnit(64, 64)
        assert rn.lookup(R[5]) == 5
        assert rn.lookup(F[0]) == 64

    def test_dest_gets_fresh_preg(self):
        rn = RenameUnit(64, 64)
        renamed = rn.rename(dynop(dest=R[1], srcs=(R[2], R[3])))
        assert renamed.dest_preg not in (1,)
        assert rn.lookup(R[1]) == renamed.dest_preg
        assert renamed.prev_dest_preg == 1

    def test_sources_read_current_mapping(self):
        rn = RenameUnit(64, 64)
        first = rn.rename(dynop(dest=R[1]))
        second = rn.rename(dynop(dest=R[4], srcs=(R[1],), seq=1))
        assert second.src_pregs == (first.dest_preg,)

    def test_serial_chain_each_gets_new_preg(self):
        rn = RenameUnit(64, 64)
        pregs = [rn.rename(dynop(dest=R[1], srcs=(R[1],), seq=i)).dest_preg
                 for i in range(5)]
        assert len(set(pregs)) == 5

    def test_zero_register_never_renamed(self):
        rn = RenameUnit(64, 64)
        renamed = rn.rename(dynop(dest=ZERO))
        assert renamed.dest_preg is None
        assert rn.lookup(ZERO) == 0

    def test_fp_and_int_pools_are_separate(self):
        rn = RenameUnit(64, 64)
        int_op = rn.rename(dynop(dest=R[1]))
        fp_op = rn.rename(dynop("fadd", dest=F[1], srcs=(F[2], F[3]), seq=1))
        assert int_op.dest_preg < 64 <= fp_op.dest_preg


class TestFreeListPressure:
    def test_can_rename_false_when_exhausted(self):
        rn = RenameUnit(34, 64)  # only 2 spare int pregs
        assert rn.can_rename(dynop(dest=R[1]))
        rn.rename(dynop(dest=R[1]))
        rn.rename(dynop(dest=R[1], seq=1))
        assert not rn.can_rename(dynop(dest=R[1], seq=2))
        # ops without destinations still rename fine
        assert rn.can_rename(dynop("store", dest=None, srcs=(R[1], R[2])))

    def test_rename_raises_when_exhausted(self):
        rn = RenameUnit(33, 64)
        rn.rename(dynop(dest=R[1]))
        with pytest.raises(OutOfPhysicalRegisters):
            rn.rename(dynop(dest=R[2], seq=1))

    def test_commit_releases_previous_mapping(self):
        rn = RenameUnit(33, 64)
        renamed = rn.rename(dynop(dest=R[1]))
        assert not rn.can_rename(dynop(dest=R[2], seq=1))
        rn.commit(renamed)  # frees old mapping of r1 (preg 1)
        assert rn.can_rename(dynop(dest=R[2], seq=1))

    def test_pool_must_cover_architectural_state(self):
        with pytest.raises(ValueError):
            RenameUnit(16, 64)


class TestRecovery:
    def test_flush_restores_rat(self):
        rn = RenameUnit(64, 64)
        a = rn.rename(dynop(dest=R[1], seq=0))
        b = rn.rename(dynop(dest=R[1], seq=1))
        c = rn.rename(dynop(dest=R[2], seq=2))
        rn.flush([c, b])  # youngest first
        assert rn.lookup(R[1]) == a.dest_preg
        assert rn.lookup(R[2]) == 2  # back to the original mapping

    def test_flush_returns_pregs_to_free_list(self):
        rn = RenameUnit(34, 64)
        a = rn.rename(dynop(dest=R[1], seq=0))
        b = rn.rename(dynop(dest=R[1], seq=1))
        assert not rn.can_rename(dynop(dest=R[3], seq=2))
        rn.flush([b, a])
        assert rn.free_count(fp=False) == 2

    def test_flush_then_rerename_is_consistent(self):
        rn = RenameUnit(64, 64)
        a = rn.rename(dynop(dest=R[1], seq=0))
        rn.flush([a])
        again = rn.rename(dynop(dest=R[1], seq=0))
        assert rn.lookup(R[1]) == again.dest_preg
        assert again.prev_dest_preg == 1

    def test_commit_mapping_none_is_noop(self):
        rn = RenameUnit(64, 64)
        rn.commit_mapping(None)
        rn.undo_mapping(None, None, None)
