"""Campaign run-log: event schema, lifecycle pairing, fault events."""

import json

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.core.config import config_for
from repro.telemetry import EVENT_FIELDS, RunLog, read_run_log, validate_event

OPS = 1200


def _runner(tmp_path, sub, **kw):
    kw.setdefault("run_log", str(tmp_path / f"{sub}.jsonl"))
    return ExperimentRunner(
        target_ops=OPS, cache_dir=str(tmp_path / sub), **kw
    )


def _events(runner, event=None):
    return read_run_log(str(runner.run_log.path), event=event)


# ---------------------------------------------------------------------------
# schema / writer


class TestValidation:
    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            validate_event({"event": "nosuch", "t": 0, "elapsed": 0})

    def test_missing_field_rejected(self):
        record = {"event": "finish", "t": 0, "elapsed": 0,
                  "key": "k", "workload": "w", "config": "c", "seed": 7,
                  "attempt": 0, "seconds": 0.1}  # worker missing
        with pytest.raises(ValueError):
            validate_event(record)

    def test_every_declared_event_validates(self):
        for event, fields in EVENT_FIELDS.items():
            record = {"event": event, "t": 0.0, "elapsed": 0.0,
                      **{f: 0 for f in fields}}
            validate_event(record)  # must not raise

    def test_log_stamps_and_flushes(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with RunLog(str(path)) as log:
            log.log("heartbeat", done=1, total=4, inflight=2, queued=1,
                    elapsed_s=0.5, sims_per_sec=2.0, eta_s=1.5)
            lines = path.read_text().splitlines()  # flushed before close
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "heartbeat"
        assert record["t"] > 0 and record["elapsed"] >= 0

    def test_log_rejects_bad_event_before_writing(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with RunLog(str(path)) as log:
            with pytest.raises(ValueError):
                log.log("bogus", anything=1)
        assert path.read_text() == ""

    def test_reader_skips_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with RunLog(str(path)) as log:
            log.log("pool_restart", restarts=1)
            log.log("pool_restart", restarts=2)
        with open(path, "a") as handle:
            handle.write('{"event": "pool_restart", "t": 1.0, "el')  # torn
        records = read_run_log(str(path))
        assert [r["restarts"] for r in records] == [1, 2]

    def test_reader_filters_by_event(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with RunLog(str(path)) as log:
            log.log("pool_restart", restarts=1)
            log.log("heartbeat", done=0, total=1, inflight=1, queued=0,
                    elapsed_s=0.1, sims_per_sec=0.0, eta_s=None)
        assert len(read_run_log(str(path), event="heartbeat")) == 1

    def test_appends_across_runner_instances(self, tmp_path):
        path = tmp_path / "log.jsonl"
        for restarts in (1, 2):
            with RunLog(str(path)) as log:
                log.log("pool_restart", restarts=restarts)
        assert len(read_run_log(str(path))) == 2


# ---------------------------------------------------------------------------
# campaign lifecycle


class TestCampaignEvents:
    def test_serial_campaign_pairs_start_finish(self, tmp_path):
        runner = _runner(tmp_path, "serial")
        tasks = [(w, config_for("ooo"))
                 for w in ("histogram", "stream_triad")]
        runner.run_many(tasks, jobs=1)
        assert len(_events(runner, "campaign_start")) == 1
        assert _events(runner, "campaign_start")[0]["mode"] == "serial"
        starts = _events(runner, "start")
        finishes = _events(runner, "finish")
        assert len(starts) == len(finishes) == len(tasks)
        assert {s["key"] for s in starts} == {f["key"] for f in finishes}
        for record in finishes:
            assert record["seconds"] > 0
            assert record["worker"] > 0
        end = _events(runner, "campaign_end")[0]
        assert end["simulations"] == len(tasks)
        assert end["quarantined"] == 0
        for record in _events(runner):
            validate_event(record)  # every line satisfies the schema

    def test_parallel_campaign_submits_and_finishes(self, tmp_path):
        runner = _runner(tmp_path, "parallel")
        tasks = [(w, config_for("ooo"))
                 for w in ("histogram", "stream_triad", "dotprod")]
        runner.run_many(tasks, jobs=2)
        assert _events(runner, "campaign_start")[0]["mode"] == "parallel"
        submits = _events(runner, "submit")
        finishes = _events(runner, "finish")
        assert len(submits) == len(finishes) == len(tasks)
        assert {s["key"] for s in submits} == {f["key"] for f in finishes}
        for record in _events(runner):
            validate_event(record)

    def test_cached_rerun_logs_cache_hits_only(self, tmp_path):
        tasks = [("histogram", config_for("ooo"))]
        _runner(tmp_path, "warm").run_many(tasks, jobs=1)
        again = _runner(tmp_path, "warm")
        again.run_many(tasks, jobs=1)
        own = [r for r in _events(again)]
        # both campaigns share the log file; the second adds exactly one
        # cache_hit and no new start/finish
        assert len([r for r in own if r["event"] == "cache_hit"]) == 1
        assert len([r for r in own if r["event"] == "start"]) == 1
        assert len([r for r in own if r["event"] == "finish"]) == 1

    def test_single_run_logs_start_finish(self, tmp_path):
        runner = _runner(tmp_path, "single")
        runner.run("histogram", config_for("ooo"))
        assert len(_events(runner, "start")) == 1
        assert len(_events(runner, "finish")) == 1
        runner.run("histogram", config_for("ooo"))  # now cached
        assert len(_events(runner, "cache_hit")) == 1

    def test_heartbeat_emitted_when_interval_zero(self, tmp_path):
        runner = _runner(tmp_path, "beat", heartbeat_interval=0.0)
        lines = []
        runner.progress = lines.append
        tasks = [(w, config_for("ooo"))
                 for w in ("histogram", "stream_triad")]
        runner.run_many(tasks, jobs=1)
        beats = _events(runner, "heartbeat")
        assert beats
        assert beats[-1]["done"] == len(tasks)
        assert lines and "done" in lines[-1]

    def test_retry_and_quarantine_events(self, tmp_path, monkeypatch):
        import repro.analysis.runner as runner_mod

        def explode(trace, config):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(runner_mod, "simulate", explode)
        runner = _runner(tmp_path, "fail", retries=2)
        results = runner.run_many([("histogram", config_for("ooo"))], jobs=1)
        assert not results[0].ok
        retries = _events(runner, "retry")
        assert len(retries) == 2
        assert all(r["kind"] == "error" for r in retries)
        quarantine = _events(runner, "quarantine")[0]
        assert "injected failure" in quarantine["error"]
        assert quarantine["attempts"] == 3  # initial try + 2 retries
        assert _events(runner, "campaign_end")[0]["quarantined"] == 1

    def test_no_log_configured_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_LOG", raising=False)
        runner = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "nolog"), run_log="",
        )
        runner.run("histogram", config_for("ooo"))
        assert runner.run_log is None
        assert not list(tmp_path.glob("*.jsonl"))

    def test_env_var_enables_log(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_RUN_LOG", str(path))
        runner = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "env")
        )
        runner.run("histogram", config_for("ooo"))
        assert len(read_run_log(str(path), event="finish")) == 1


# ---------------------------------------------------------------------------
# cache-health events (tolerated corruption is observable, not just counted)


class TestCacheWarningEvents:
    def _corrupt_run(self, tmp_path, text, **runner_kw):
        """Warm the cache, rewrite the entry to ``text``, re-read cold."""
        warm = _runner(tmp_path, "cachewarn")
        warm.run("dotprod", config_for("ooo"))
        key = warm._key("dotprod", config_for("ooo"), warm.seed)
        (tmp_path / "cachewarn" / f"{key}.json").write_text(text)
        cold = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "cachewarn"),
            run_log=str(tmp_path / "cold.jsonl"), **runner_kw)
        cold.run("dotprod", config_for("ooo"))
        return cold

    def test_corrupt_entry_emits_structured_event(self, tmp_path):
        cold = self._corrupt_run(tmp_path, '{"torn": ')
        events = _events(cold, "cache_warning")
        assert len(events) == 1
        assert events[0]["reason"] == "corrupt"
        assert events[0]["count"] == 1 == cold.cache_warnings

    def test_zero_byte_entry_emits_its_own_reason(self, tmp_path):
        cold = self._corrupt_run(tmp_path, "")
        events = _events(cold, "cache_warning")
        assert events and events[0]["reason"] == "zero-byte"

    def test_warning_lands_on_metrics_counter(self, tmp_path):
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
        cold = self._corrupt_run(tmp_path, "garbage{", metrics=metrics)
        assert metrics.value("runner.cache_warnings") == 1
        assert cold.cache_warnings == 1

    def test_healthy_cache_emits_no_warning(self, tmp_path):
        warm = _runner(tmp_path, "healthy")
        warm.run("dotprod", config_for("ooo"))
        cold = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "healthy"),
            run_log=str(tmp_path / "cold.jsonl"))
        cold.run("dotprod", config_for("ooo"))
        assert _events(cold, "cache_warning") == []
        assert cold.cache_warnings == 0


class TestTolerantReader:
    def test_mid_file_corruption_skipped_and_counted(self, tmp_path):
        from repro.telemetry.runlog import read_run_log_tolerant

        path = tmp_path / "log.jsonl"
        path.write_text('{"event": "heartbeat", "a": 1}\n'
                        '\x00GARBAGE not json\n'
                        '[1, 2, 3]\n'
                        '{"event": "heartbeat", "a": 2}\n')
        records, skipped = read_run_log_tolerant(str(path))
        assert skipped == 2  # garbage line + non-object line
        assert [r["a"] for r in records] == [1, 2]

    def test_strict_reader_raises_where_tolerant_does_not(self, tmp_path):
        import json as json_mod

        import pytest

        from repro.telemetry.runlog import (read_run_log,
                                            read_run_log_tolerant)

        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\nGARBAGE\n{"a": 2}\n')
        with pytest.raises(json_mod.JSONDecodeError):
            read_run_log(str(path))
        records, skipped = read_run_log_tolerant(str(path))
        assert len(records) == 2 and skipped == 1

    def test_missing_file_counts_one_skip(self, tmp_path):
        from repro.telemetry.runlog import read_run_log_tolerant

        records, skipped = read_run_log_tolerant(str(tmp_path / "no.jsonl"))
        assert records == [] and skipped == 1
