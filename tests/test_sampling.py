"""Sampled simulation: exactness, determinism, error bounds, wiring.

The two load-bearing classes answer the acceptance criteria directly:

* :class:`TestExactPath` — a sampling config whose window covers the
  whole trace must be *identical* to a full-detail run (same golden
  numbers, same ``to_dict`` fields), so sampled mode degrades to exact
  rather than "approximately exact".
* :class:`TestErrorBound` — at the documented validation config
  (contiguous 1000-op windows, whole-window measurement) the
  extrapolated IPC of every golden-matrix cell stays within 5% of the
  pinned full-run value.

The rest pins determinism, the extrapolation metadata, and that every
entry point (``simulate`` dispatch, lock-step driver, experiment-runner
cache, sweeps, the serve protocol + worker pool) carries sampling
through unchanged.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweep import sweep
from repro.core.config import config_for
from repro.core.lockstep import run_lockstep
from repro.core.pipeline import simulate
from repro.core.sampling import (
    DEFAULT_SAMPLE_PERIOD,
    FastForward,
    SampledSimulation,
    build_simulation,
    simulate_sampled,
    subtrace,
    with_sampling,
)
from repro.core.stats import SimResult
from repro.workloads.suite import get_trace

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_stats.json").read_text()
)
OPS = GOLDEN["ops"]
SEED = GOLDEN["seed"]
_WORKLOADS = sorted({cell.split("/")[0] for cell in GOLDEN["results"]})
_ARCHES = sorted({cell.split("/")[1] for cell in GOLDEN["results"]})

#: The validated accuracy config (see docs/performance.md): contiguous
#: windows, whole-window measurement.  Gapped/short-window configs trade
#: accuracy for speed and are NOT covered by the 5% bound.
ACCURACY_KNOBS = dict(period=1000, window=1000, warmup=0)


def _full_dict(result):
    """``to_dict`` minus the fields that mark a result as sampled."""
    data = result.to_dict()
    data.pop("sampled")
    data.pop("sampling")
    return data


# ---------------------------------------------------------------------------
# knobs


class TestKnobs:
    def test_with_sampling_defaults_period(self):
        config = with_sampling(config_for("ooo"))
        assert config.sample_period == DEFAULT_SAMPLE_PERIOD

    def test_with_sampling_keeps_existing_period(self):
        config = with_sampling(with_sampling(config_for("ooo"), period=5000))
        assert config.sample_period == 5000

    def test_with_sampling_overrides(self):
        config = with_sampling(
            config_for("ooo"), period=9000, window=300, warmup=40,
            ff_width=4, ff_warmup_ops=100,
        )
        assert (config.sample_period, config.sample_window,
                config.warmup_cycles, config.ff_width,
                config.ff_warmup_ops) == (9000, 300, 40, 4, 100)

    def test_sampling_off_by_default(self):
        assert config_for("ooo").sample_period == 0

    @pytest.mark.parametrize("bad", [
        dict(period=1000, window=0),
        dict(period=1000, warmup=-1),
        dict(period=1000, ff_width=0),
        dict(period=1000, ff_warmup_ops=-5),
    ])
    def test_sampled_simulation_rejects_bad_knobs(self, bad):
        trace = get_trace("dotprod", 500, SEED)
        with pytest.raises(ValueError):
            SampledSimulation(trace, with_sampling(config_for("ooo"), **bad))

    def test_sampled_simulation_requires_period(self):
        trace = get_trace("dotprod", 500, SEED)
        with pytest.raises(ValueError):
            SampledSimulation(trace, config_for("ooo"))


# ---------------------------------------------------------------------------
# subtrace


class TestSubtrace:
    def test_renumbers_seq_from_zero(self):
        trace = get_trace("histogram", 500, SEED)
        window = subtrace(trace, 100, 50)
        assert len(window) == 50
        assert [op.seq for op in window.ops] == list(range(50))
        # everything but seq is the original op
        for got, want in zip(window.ops, trace.ops[100:150]):
            assert got.pc == want.pc and got.opcode is want.opcode
            assert got.mem_addr == want.mem_addr

    def test_whole_trace_is_identity(self):
        trace = get_trace("histogram", 500, SEED)
        assert subtrace(trace, 0, 500) is trace
        assert subtrace(trace, 0, 10_000) is trace

    def test_tail_window_is_clamped(self):
        trace = get_trace("histogram", 500, SEED)
        assert len(subtrace(trace, 450, 100)) == 50


# ---------------------------------------------------------------------------
# exact path: window covers the trace -> identical to full detail


class TestExactPath:
    @pytest.mark.parametrize("workload", _WORKLOADS)
    def test_exact_matches_golden_matrix(self, workload):
        trace = get_trace(workload, OPS, SEED)
        for arch in _ARCHES:
            cell = f"{workload}/{arch}"
            config = with_sampling(config_for(arch), window=OPS)
            result = simulate(trace, config)
            assert result.sampled and result.sampling["exact"], cell
            expect = GOLDEN["results"][cell]
            assert result.cycles == expect["cycles"], cell
            assert result.stats.committed == expect["committed"], cell
            assert result.stats.issued == expect["issued"], cell
            assert round(result.ipc, 6) == pytest.approx(expect["ipc"]), cell

    def test_exact_to_dict_field_by_field(self):
        """Beyond the golden subset: every serialized field matches."""
        trace = get_trace("histogram", 1000, SEED)
        for arch in ("ooo", "ballerino", "ces", "inorder"):
            full = simulate(trace, config_for(arch))
            sampled = simulate(
                trace, with_sampling(config_for(arch), window=len(trace)))
            assert _full_dict(sampled) == _full_dict(full), arch
            assert full.sampled is False and sampled.sampled is True

    def test_exact_metadata(self):
        trace = get_trace("dotprod", 800, SEED)
        result = simulate(
            trace, with_sampling(config_for("ooo"), window=len(trace)))
        meta = result.sampling
        assert meta["exact"] is True
        assert meta["windows"] == 1
        assert meta["measured_ops"] == len(trace)
        assert meta["ff_ops"] == 0 and meta["ff_cycles"] == 0
        assert meta["knobs"]["sample_window"] == len(trace)


# ---------------------------------------------------------------------------
# determinism


class TestDeterminism:
    def test_sampled_run_is_deterministic(self):
        trace = get_trace("stream_triad", 2000, SEED)
        config = with_sampling(
            config_for("ooo"), period=700, window=300, ff_warmup_ops=100)
        first = simulate_sampled(trace, config)
        second = simulate_sampled(trace, config)
        assert first.to_dict() == second.to_dict()

    def test_fast_forward_is_deterministic(self):
        trace = get_trace("histogram", 1500, SEED)
        config = with_sampling(config_for("ooo"), period=1000, window=200)

        def warmed_state():
            sim = SampledSimulation(trace, config)
            sim.begin()
            while sim.step():
                pass
            sim.finalize()
            return (sim.ff.index, sim.ff.ops_warmed, sim.ff.cycles,
                    dict(sim.hier.events), sim.frontend.lookups)

        assert warmed_state() == warmed_state()


# ---------------------------------------------------------------------------
# error bound: the acceptance criterion


class TestErrorBound:
    @pytest.mark.parametrize("workload", _WORKLOADS)
    def test_extrapolated_ipc_within_5_percent(self, workload):
        """At the validation config every golden cell lands within 5%."""
        trace = get_trace(workload, OPS, SEED)
        for arch in _ARCHES:
            cell = f"{workload}/{arch}"
            config = with_sampling(config_for(arch), **ACCURACY_KNOBS)
            result = simulate(trace, config)
            assert result.sampled and not result.sampling["exact"], cell
            golden_ipc = GOLDEN["results"][cell]["ipc"]
            error = abs(result.ipc - golden_ipc) / golden_ipc
            assert error <= 0.05, (
                f"{cell}: sampled IPC {result.ipc:.4f} vs full "
                f"{golden_ipc:.4f} ({100 * error:.1f}% off)")


# ---------------------------------------------------------------------------
# extrapolation metadata


class TestExtrapolation:
    @pytest.fixture(scope="class")
    def result(self):
        trace = get_trace("histogram", 2000, SEED)
        config = with_sampling(config_for("ooo"), **ACCURACY_KNOBS)
        return simulate(trace, config)

    def test_committed_scales_to_whole_trace(self, result):
        assert result.stats.committed == OPS

    def test_window_accounting(self, result):
        meta = result.sampling
        assert meta["windows"] == len([
            s for s in result.interval_samples if "window" in s])
        # contiguous windows: every op is measured, none fast-forwarded
        assert meta["measured_ops"] == OPS
        assert meta["ff_ops"] == 0 and meta["warmup_ops"] == 0
        assert meta["knobs"] == {
            "sample_period": 1000, "sample_window": 1000,
            "warmup_cycles": 0, "ff_width": 8, "ff_warmup_ops": 0,
        }

    def test_estimates_have_ci(self, result):
        estimates = result.sampling["estimates"]
        assert set(estimates) == {
            "ipc", "cpi", "energy_per_op", "mispredicts_per_kop"}
        ipc = estimates["ipc"]
        assert ipc["n"] == result.sampling["windows"] >= 2
        assert ipc["ci95"] is not None and ipc["ci95"] >= 0.0
        # pooled-CPI IPC and the batch-means IPC must be in the same
        # ballpark (they differ by window weighting only)
        assert ipc["mean"] == pytest.approx(result.ipc, rel=0.25)

    def test_single_window_has_no_ci(self):
        trace = get_trace("dotprod", 1200, SEED)
        config = with_sampling(config_for("ooo"), period=1200, window=700)
        result = simulate(trace, config)
        estimates = result.sampling["estimates"]
        assert estimates["ipc"]["n"] >= 1
        if estimates["ipc"]["n"] == 1:
            assert estimates["ipc"]["ci95"] is None

    def test_round_trips_through_serialization(self, result):
        clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.sampled is True
        assert clone.sampling == result.sampling
        assert clone.to_dict() == result.to_dict()


# ---------------------------------------------------------------------------
# dispatch + driver wiring


class TestDispatch:
    def test_simulate_dispatches_on_sample_period(self):
        trace = get_trace("histogram", 1500, SEED)
        result = simulate(
            trace, with_sampling(config_for("ooo"), period=1000, window=400))
        assert result.sampled is True

    def test_telemetry_forces_full_detail(self):
        from repro.telemetry import MetricsRegistry

        trace = get_trace("histogram", 1000, SEED)
        config = with_sampling(config_for("ooo"), period=500, window=200)
        result = simulate(trace, config, metrics=MetricsRegistry())
        assert result.sampled is False  # per-cycle hooks need full detail

    def test_build_simulation_picks_driver(self):
        trace = get_trace("histogram", 500, SEED)
        from repro.core.pipeline import Pipeline

        assert isinstance(
            build_simulation(trace, config_for("ooo")), Pipeline)
        assert isinstance(
            build_simulation(trace, with_sampling(config_for("ooo"))),
            SampledSimulation)


class TestLockstepMixed:
    def test_sampled_and_full_interleave_unchanged(self):
        """One lock-step pass over mixed tiers == each run by itself."""
        trace = get_trace("histogram", 2000, SEED)
        full_cfg = config_for("ooo")
        sampled_cfg = with_sampling(config_for("ooo"), **ACCURACY_KNOBS)
        outcomes = run_lockstep(trace, [full_cfg, sampled_cfg])
        for outcome in outcomes:
            assert not isinstance(outcome, Exception), repr(outcome)
        assert outcomes[0].to_dict() == simulate(trace, full_cfg).to_dict()
        assert outcomes[1].to_dict() == simulate(trace, sampled_cfg).to_dict()
        assert outcomes[0].sampled is False
        assert outcomes[1].sampled is True


# ---------------------------------------------------------------------------
# fast-forward engine


class TestFastForward:
    def _parts(self, config):
        from repro.frontend.branch_predictor import FrontEnd
        from repro.lsq.mdp import StoreSetPredictor
        from repro.memory.hierarchy import MemoryHierarchy

        return (FrontEnd(), MemoryHierarchy(config.hierarchy),
                StoreSetPredictor())

    def test_advances_clock_by_width(self):
        trace = get_trace("histogram", 1000, SEED)
        config = config_for("ooo")  # ff_width 8
        ff = FastForward(trace, config, *self._parts(config))
        clock = ff.advance(1000, 100)
        assert clock == 100 + 125  # ceil(1000 / 8)
        assert ff.index == 1000
        assert ff.ops_warmed == 1000 and ff.ops_skipped == 0
        assert ff.cycles == 125

    def test_warms_caches_and_predictor(self):
        trace = get_trace("histogram", 1000, SEED)
        config = config_for("ooo")
        frontend, hier, mdp = self._parts(config)
        ff = FastForward(trace, config, frontend, hier, mdp)
        ff.advance(1000, 0)
        assert hier.events["l1d"] > 0
        assert hier.events["l1i"] > 0
        assert frontend.lookups > 0

    def test_ff_warmup_ops_bounds_the_warming(self):
        trace = get_trace("histogram", 1000, SEED)
        config = with_sampling(config_for("ooo"), ff_warmup_ops=200)
        ff = FastForward(trace, config, *self._parts(config))
        clock = ff.advance(1000, 0)
        assert ff.index == 1000  # position advanced over the whole gap
        assert ff.ops_skipped == 800 and ff.ops_warmed == 200
        assert clock == 125  # virtual time covers skipped ops too

    def test_settle_quiesces_hierarchy_timing(self):
        """After an FF stretch the hierarchy must be warm but idle."""
        trace = get_trace("stream_triad", 2000, SEED)
        config = config_for("ooo")
        frontend, hier, mdp = self._parts(config)
        from repro.memory.cache import LINE_SIZE

        ff = FastForward(trace, config, frontend, hier, mdp)
        clock = ff.advance(2000, 0)
        hier.settle(clock)
        # content survives: the most recently touched line is resident
        # with an already-elapsed fill time...
        last_mem = next(
            op for op in reversed(trace.ops) if op.mem_addr is not None)
        fill = hier.l1d.probe(last_mem.mem_addr // LINE_SIZE)
        assert fill is not None and fill <= clock
        # ...while no in-flight miss or busy bank outlives the settle
        assert all(not mshr._by_line for mshr in hier.mshrs.values())
        for bank in hier.dram._banks:
            assert bank.ready_at <= clock


# ---------------------------------------------------------------------------
# runner cache + sweep


class TestRunnerIntegration:
    def test_sampled_and_full_cache_separately(self, tmp_path):
        runner = ExperimentRunner(
            target_ops=1500, cache_dir=str(tmp_path / "cache"), run_log="")
        full_cfg = config_for("ooo")
        sampled_cfg = with_sampling(config_for("ooo"), period=1000, window=400)
        full = runner.run("histogram", full_cfg)
        sampled = runner.run("histogram", sampled_cfg)
        assert runner.simulations_run == 2  # distinct cache keys
        assert full.sampled is False and sampled.sampled is True

        fresh = ExperimentRunner(
            target_ops=1500, cache_dir=str(tmp_path / "cache"), run_log="")
        again_full = fresh.run("histogram", full_cfg)
        again_sampled = fresh.run("histogram", sampled_cfg)
        assert fresh.simulations_run == 0 and fresh.cache_hits == 2
        assert again_full.to_dict() == full.to_dict()
        assert again_sampled.to_dict() == sampled.to_dict()
        assert again_sampled.sampling == sampled.sampling

    def test_full_runs_unaffected_by_sampling_code(self, tmp_path):
        """The flagship regression: full runs stay golden-byte-identical."""
        runner = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "cache"), run_log="")
        result = runner.run("histogram", config_for("ooo"))
        expect = GOLDEN["results"]["histogram/ooo"]
        assert result.cycles == expect["cycles"]
        assert result.stats.committed == expect["committed"]
        assert round(result.ipc, 6) == pytest.approx(expect["ipc"])
        assert result.sampled is False and result.sampling == {}

    def test_sweep_sampling_kwarg(self, tmp_path):
        runner = ExperimentRunner(
            target_ops=1500, cache_dir=str(tmp_path / "cache"), run_log="")
        outcome = sweep(
            {"arch": ["ooo", "ballerino"]}, workloads=("histogram",),
            runner=runner, sampling={"period": 1000, "window": 400},
        )
        assert outcome.points
        for point in outcome.points:
            assert point.result.sampled is True, point.params
            assert point.result.sampling["knobs"]["sample_period"] == 1000


# ---------------------------------------------------------------------------
# serve protocol


class TestServeProtocol:
    def _submit(self, **extra):
        from repro.serve.protocol import parse_submit

        payload = {"cells": [{"workload": "dotprod", "arch": "ooo"}]}
        payload.update(extra)
        return parse_submit(payload, job_id="j1")

    def test_default_is_full_detail(self):
        assert self._submit().sampling is None

    def test_sampled_true_selects_defaults(self):
        assert self._submit(sampled=True).sampling == {}

    def test_sampling_knobs_pass_through(self):
        spec = self._submit(
            sampling={"period": 5000, "window": 500, "ff_warmup_ops": 0})
        assert spec.sampling == {
            "period": 5000, "window": 500, "ff_warmup_ops": 0}

    def test_spec_round_trips_sampling(self):
        from repro.serve.protocol import JobSpec

        spec = self._submit(sampling={"period": 5000})
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.sampling == {"period": 5000}
        assert JobSpec.from_dict(self._submit().to_dict()).sampling is None

    @pytest.mark.parametrize("bad", [
        {"sampled": "yes"},
        {"sampling": "fast"},
        {"sampling": {"cadence": 100}},
        {"sampling": {"period": "1000"}},
        {"sampling": {"period": True}},
        {"sampling": {"period": 0}},
        {"sampling": {"window": -5}},
    ])
    def test_malformed_sampling_rejected(self, bad):
        from repro.serve.protocol import ProtocolError

        with pytest.raises(ProtocolError) as err:
            self._submit(**bad)
        assert err.value.code == "bad-sampling"

    def test_ff_warmup_ops_zero_is_valid(self):
        assert self._submit(
            sampling={"ff_warmup_ops": 0}).sampling == {"ff_warmup_ops": 0}
