"""Fine-grained behavioural tests of OoO, CASINO and FXA internals."""

from collections import Counter
from types import SimpleNamespace

import pytest

from repro.core import config_for, simulate
from repro.core.ifop import InFlightOp
from repro.core.pipeline import Pipeline
from repro.isa import R, opcode
from repro.isa.instruction import DynOp
from repro.sched.casino import CasinoScheduler
from repro.sched.ooo import OutOfOrderScheduler
from repro.workloads import ProgramBuilder, build_trace, execute


class FakeCore:
    """Minimal pipeline surface for isolated scheduler tests."""

    def __init__(self, issue_width=8):
        self.energy = Counter()
        self.cycle = 0
        self.mdp = None
        self._ready = set()
        self.config = SimpleNamespace(issue_width=issue_width, decode_width=4)
        self.granted = []

    def set_ready(self, *seqs_or_pregs):
        self._ready.update(seqs_or_pregs)

    def srcs_ready(self, ifop, cycle):
        return all(p in self._ready for p in ifop.src_pregs)

    def mdp_dep_satisfied(self, ifop):
        return True

    def op_ready(self, ifop, cycle):
        return self.srcs_ready(ifop, cycle)

    def try_grant(self, ifop, cycle):
        self.granted.append(ifop.seq)
        return True


def make_op(seq, src_pregs=(), dest_preg=None):
    dyn = DynOp(seq=seq, pc=seq, opcode=opcode("add"),
                dest=R[1] if dest_preg is not None else None,
                srcs=tuple(R[1] for _ in src_pregs))
    ifop = InFlightOp(seq=seq, op=dyn, decode_cycle=0)
    ifop.src_pregs = tuple(src_pregs)
    ifop.dest_preg = dest_preg
    return ifop


class TestOoOInternals:
    def test_slots_are_reused(self):
        core = FakeCore()
        sched = OutOfOrderScheduler(core, iq_size=4)
        ops = [make_op(i) for i in range(4)]
        for op in ops:
            sched.insert(op, 0)
        assert not sched.can_accept(make_op(9))
        issued = sched.select(1)  # all ready (no sources)
        assert len(issued) == 4
        assert sched.can_accept(make_op(9))
        sched.insert(make_op(9), 2)
        assert sched.occupancy() == 1

    def test_position_priority_without_oldest_first(self):
        """The prefix-sum grants the lowest slot, not the oldest op."""
        core = FakeCore(issue_width=1)
        sched = OutOfOrderScheduler(core, iq_size=4, oldest_first=False)
        a, b, c = make_op(10), make_op(11), make_op(12)
        for op in (a, b, c):
            sched.insert(op, 0)
        sched.select(1)  # drains all three via width... cap width:
        # re-fill: slot 0 freed first is reused by the youngest
        core2 = FakeCore(issue_width=1)
        sched2 = OutOfOrderScheduler(core2, iq_size=2, oldest_first=False)
        first, second = make_op(20), make_op(21)
        sched2.insert(first, 0)
        sched2.insert(second, 0)
        assert sched2.select(1) == [first]  # slot 0
        sched2.insert(make_op(22), 1)  # takes freed slot 0
        issued = sched2.select(2)
        assert issued[0].seq == 22  # younger op wins on position

    def test_oldest_first_overrides_position(self):
        core = FakeCore(issue_width=1)
        sched = OutOfOrderScheduler(core, iq_size=2, oldest_first=True)
        first, second = make_op(20), make_op(21)
        sched.insert(first, 0)
        sched.insert(second, 0)
        assert sched.select(1) == [first]
        sched.insert(make_op(22), 1)  # slot 0, but younger
        issued = sched.select(2)
        assert issued[0].seq == 21  # age wins

    def test_flush_frees_slots(self):
        core = FakeCore()
        sched = OutOfOrderScheduler(core, iq_size=4)
        for i in range(4):
            sched.insert(make_op(i), 0)
        sched.flush_from(2)
        assert sched.occupancy() == 2
        assert sched.can_accept(make_op(5))


class TestCasinoInternals:
    def _sched(self, core=None, sizes=(4, 4, 4), window=2):
        core = core or FakeCore()
        return core, CasinoScheduler(core, queue_sizes=sizes, window=window)

    def test_nothing_ready_advances_window(self):
        core, sched = self._sched()
        blocked = [make_op(i, src_pregs=(99,)) for i in range(2)]
        for op in blocked:
            sched.insert(op, 0)
        sched.select(1)
        # both (window=2) passed to the next queue
        assert len(sched.queues[0]) == 0
        assert [op.seq for op in sched.queues[1]] == [0, 1]

    def test_trailing_nonready_stays_behind_issued(self):
        core, sched = self._sched()
        ready = make_op(0)
        waiting = make_op(1, src_pregs=(99,))
        sched.insert(ready, 0)
        sched.insert(waiting, 0)
        issued = sched.select(1)
        assert issued == [ready]
        # the consumer-like trailing op stays in queue 0, not passed
        assert [op.seq for op in sched.queues[0]] == [1]
        assert len(sched.queues[1]) == 0

    def test_leading_nonready_is_passed_when_something_issues(self):
        core, sched = self._sched()
        core.set_ready()  # nothing
        waiting = make_op(0, src_pregs=(99,))
        ready = make_op(1)
        sched.insert(waiting, 0)
        sched.insert(ready, 0)
        issued = sched.select(1)
        assert issued == [ready]
        assert [op.seq for op in sched.queues[1]] == [0]

    def test_pass_respects_next_queue_capacity(self):
        core, sched = self._sched(sizes=(4, 1, 4), window=2)
        for i in range(3):
            sched.insert(make_op(i, src_pregs=(99,)), 0)
        sched.select(1)  # passes only one (queue 1 capacity)
        assert len(sched.queues[1]) == 1
        assert len(sched.queues[0]) == 2

    def test_last_queue_strictly_in_order(self):
        core, sched = self._sched(sizes=(2, 2), window=2)
        blocked = make_op(0, src_pregs=(99,))
        ready = make_op(1)
        # put both into the FINAL queue directly
        sched.queues[1].extend([blocked, ready])
        issued = sched.select(1)
        assert issued == []  # head not ready: everything stalls

    def test_rejects_single_queue_config(self):
        with pytest.raises(ValueError):
            CasinoScheduler(FakeCore(), queue_sizes=(8,))


class TestFXAInternals:
    def test_ixu_flow_to_backend_after_depth(self):
        trace_ops = 0

        def body(b):
            b.li(R[1], 0x2000000)
            b.load(R[2], R[1], 0)       # not IXU-eligible
            b.addi(R[3], R[2], 1)       # eligible but blocked on the load
            b.addi(R[4], R[4], 1)       # executes in the IXU

        b = ProgramBuilder("t")
        body(b)
        b.halt()
        trace = execute(b.build())
        pipeline = Pipeline(trace, config_for("fxa"))
        result = pipeline.run()
        sched = result.stats.scheduler
        assert result.stats.committed == len(trace)
        assert sched["ixu_executed"] >= 1          # the independent addi
        assert sched["backend_issued"] >= 2        # load + its consumer

    def test_backend_is_half_sized(self):
        assert config_for("fxa").scheduler.iq_size == 48
        assert config_for("ooo").scheduler.iq_size == 96

    def test_fxa_tracks_ooo_on_suite_kernel(self):
        trace = build_trace("matmul_tile", target_ops=4000)
        fxa = simulate(trace, config_for("fxa"))
        ooo = simulate(trace, config_for("ooo"))
        assert fxa.cycles <= ooo.cycles * 1.3
