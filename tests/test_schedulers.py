"""Behavioural tests for each scheduling-window implementation.

These run small crafted traces through the full pipeline and assert
scheduler-observable behaviour (issue order, steering outcomes, IQ mixes),
not just end IPC.
"""

import pytest

from repro.core import config_for, simulate
from repro.core.pipeline import Pipeline
from repro.isa import F, R
from repro.sched.steering import SteerInfo, SteeringScoreboard
from repro.workloads import ProgramBuilder, build_trace, execute


def trace_of(build_fn, name="t", memory=None):
    b = ProgramBuilder(name)
    build_fn(b)
    b.halt()
    return execute(b.build(), memory=memory)


def loop_with_miss_and_independents():
    """A cold load chain plus independent ALU work, repeated."""

    def body(b):
        b.li(R[1], 0x2000000)
        b.li(R[10], 40)
        b.label("top")
        b.load(R[2], R[1], 0)    # cold miss every iteration (new line)
        b.addi(R[3], R[2], 1)    # dependent on the miss
        b.addi(R[4], R[4], 1)    # independent work
        b.addi(R[5], R[5], 2)
        b.xor(R[6], R[4], R[5])
        b.addi(R[1], R[1], 64)
        b.addi(R[10], R[10], -1)
        b.bne(R[10], R[0], "top")

    return trace_of(body, "miss_plus_ilp")


class TestInOrderVsOutOfOrder:
    def test_ooo_bypasses_stalled_head(self):
        trace = loop_with_miss_and_independents()
        ino = simulate(trace, config_for("inorder"))
        ooo = simulate(trace, config_for("ooo"))
        assert ooo.cycles < ino.cycles

    def test_oldest_first_not_worse_on_suite_kernel(self):
        trace = build_trace("dag_wide", target_ops=4000)
        plain = simulate(trace, config_for("ooo"))
        oldest = simulate(trace, config_for("ooo_oldest"))
        assert oldest.cycles <= plain.cycles * 1.05


class TestCES:
    def test_steering_counters_populated(self):
        trace = build_trace("dag_wide", target_ops=4000)
        result = simulate(trace, config_for("ces"))
        sched = result.stats.scheduler
        assert sched["steer_dc"] > 0
        assert sched["alloc_ready"] + sched["alloc_nonready"] > 0
        # Fig. 4's claim: most stalls are caused by ready instructions
        assert "stall_ready" in sched and "stall_nonready" in sched

    def test_head_state_breakdown_sums_to_piq_cycles(self):
        trace = build_trace("matmul_tile", target_ops=3000)
        cfg = config_for("ces")
        pipeline = Pipeline(trace, cfg)
        result = pipeline.run()
        sched = pipeline.scheduler
        total = sum(sched.head_states.values())
        assert total == result.cycles * cfg.scheduler.num_piqs

    def test_mda_reduces_mdep_head_stalls(self):
        trace = build_trace("histogram", target_ops=6000)
        plain = simulate(trace, config_for("ces"))
        mda = simulate(trace, config_for("ces_mda"))
        assert mda.stats.scheduler["head_wait_mdep"] <= \
            plain.stats.scheduler["head_wait_mdep"]

    def test_chain_goes_to_single_piq(self):
        # one serial chain: after the head allocates, everything steers
        def body(b):
            b.li(R[1], 0x2000000)
            b.load(R[2], R[1], 0)  # non-ready root (cold miss)
            for _ in range(6):
                b.addi(R[2], R[2], 1)

        result = simulate(trace_of(body), config_for("ces"))
        assert result.stats.scheduler["steer_dc"] >= 5


class TestCasino:
    def test_passes_happen(self):
        trace = build_trace("pointer_chase", target_ops=3000)
        result = simulate(trace, config_for("casino"))
        assert result.stats.scheduler["passes"] > 0

    def test_issue_spread_over_queues(self):
        trace = build_trace("mixed_int_fp", target_ops=4000)
        result = simulate(trace, config_for("casino"))
        sched = result.stats.scheduler
        issued = [v for k, v in sched.items() if k.startswith("issued_q")]
        assert sum(issued) == result.stats.issued
        assert issued[0] > 0  # the first S-IQ captures ready work

    def test_casino_beats_inorder_on_mlp_mix(self):
        trace = build_trace("matmul_tile", target_ops=6000)
        ino = simulate(trace, config_for("inorder"))
        casino = simulate(trace, config_for("casino"))
        assert casino.cycles < ino.cycles


class TestFXA:
    def test_ixu_filters_ready_alu_ops(self):
        trace = build_trace("matmul_tile", target_ops=4000)
        result = simulate(trace, config_for("fxa"))
        sched = result.stats.scheduler
        assert sched["ixu_executed"] > 0
        assert sched["backend_issued"] > 0
        # loads/FP must all go to the back end: IXU handles a minority here
        assert sched["ixu_executed"] + sched["backend_issued"] == result.stats.issued

    def test_ixu_share_high_on_alu_heavy_code(self):
        def body(b):
            b.li(R[10], 200)
            b.label("top")
            for lane in range(6):
                b.addi(R[1 + lane], R[1 + lane], 1)
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        result = simulate(trace_of(body), config_for("fxa"))
        sched = result.stats.scheduler
        assert sched["ixu_executed"] > sched["backend_issued"]


class TestBallerino:
    def test_issue_mix_counters(self):
        trace = build_trace("dag_wide", target_ops=4000)
        result = simulate(trace, config_for("ballerino"))
        sched = result.stats.scheduler
        assert sched["issued_siq"] > 0
        assert sched["issued_piq"] > 0
        assert sched["issued_siq"] + sched["issued_piq"] == result.stats.issued

    def test_siq_filters_ready_at_dispatch(self):
        # truly ready-at-dispatch work (li has no sources): the S-IQ must
        # speculatively issue the bulk of it without P-IQ involvement
        def body(b):
            b.li(R[10], 100)
            b.label("top")
            b.li(R[1], 1)
            b.li(R[2], 2)
            b.addi(R[10], R[10], -1)
            b.bne(R[10], R[0], "top")

        result = simulate(trace_of(body), config_for("ballerino"))
        sched = result.stats.scheduler
        assert sched["issued_siq"] > sched["issued_piq"]

    def test_siq_share_near_paper_fraction(self):
        """Paper §VI-C: the S-IQ speculatively issues ~41% of instructions."""
        trace = build_trace("mixed_int_fp", target_ops=6000)
        result = simulate(trace, config_for("ballerino"))
        sched = result.stats.scheduler
        share = sched["issued_siq"] / (sched["issued_siq"] + sched["issued_piq"])
        assert 0.2 < share < 0.7

    def test_sharing_activates_under_chain_pressure(self):
        trace = build_trace("dag_wide", target_ops=6000)
        result = simulate(trace, config_for("ballerino"))
        assert result.stats.scheduler["share_activations"] > 0

    def test_step_variants_monotone_on_chain_heavy_kernel(self):
        trace = build_trace("dag_wide", target_ops=6000)
        step1 = simulate(trace, config_for("ballerino_step1"))
        step3 = simulate(trace, config_for("ballerino"))
        ideal = simulate(trace, config_for("ballerino_ideal"))
        assert step3.cycles <= step1.cycles
        assert ideal.cycles <= step3.cycles * 1.03

    def test_mda_steering_event_counted(self):
        trace = build_trace("histogram", target_ops=6000)
        result = simulate(trace, config_for("ballerino"))
        assert result.stats.scheduler["steer_mda"] > 0
        step1 = simulate(trace, config_for("ballerino_step1"))
        assert step1.stats.scheduler["steer_mda"] == 0

    def test_ballerino12_not_slower(self):
        trace = build_trace("dag_wide", target_ops=6000)
        eight = simulate(trace, config_for("ballerino"))
        twelve = simulate(trace, config_for("ballerino12"))
        assert twelve.cycles <= eight.cycles * 1.02


class TestSteeringScoreboard:
    def test_set_get_clear(self):
        sb = SteeringScoreboard()
        sb.set(5, SteerInfo(iq=2, owner_seq=7))
        assert sb.get(5).iq == 2
        sb.clear(5)
        assert sb.get(5) is None
        sb.clear(None)  # no-op

    def test_reserve(self):
        sb = SteeringScoreboard()
        sb.set(5, SteerInfo(iq=2, owner_seq=7))
        sb.reserve(5)
        assert sb.get(5).reserved
        sb.reserve(99)  # absent: no-op

    def test_flush_by_owner(self):
        sb = SteeringScoreboard()
        sb.set(5, SteerInfo(iq=2, owner_seq=7))
        sb.set(6, SteerInfo(iq=3, owner_seq=12))
        sb.flush_from(10)
        assert sb.get(5) is not None
        assert sb.get(6) is None
        assert len(sb) == 1
