"""Tests for trace save/load."""

import json

import pytest

from repro.workloads import (
    TraceFormatError,
    build_trace,
    load_trace,
    save_trace,
)


@pytest.fixture()
def trace():
    return build_trace("histogram", target_ops=800)


class TestRoundTrip:
    def test_identical_after_round_trip(self, trace, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.seq == b.seq
            assert a.pc == b.pc
            assert a.opcode is b.opcode  # interned via the opcode table
            assert a.dest == b.dest
            assert a.srcs == b.srcs
            assert a.mem_addr == b.mem_addr
            assert a.taken == b.taken
            assert a.target_pc == b.target_pc
            assert a.fallthrough_pc == b.fallthrough_pc

    def test_simulation_identical_on_loaded_trace(self, trace, tmp_path):
        from repro import config_for, simulate

        path = tmp_path / "t.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        original = simulate(trace, config_for("ballerino"))
        replayed = simulate(loaded, config_for("ballerino"))
        assert original.cycles == replayed.cycles
        assert original.stats.energy_events == replayed.stats.energy_events

    def test_accepts_str_path(self, trace, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(trace, path)
        assert len(load_trace(path)) == len(trace)


class TestErrorHandling:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(TraceFormatError, match="not a repro-trace"):
            load_trace(path)

    def test_rejects_garbage_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("not json at all\n")
        with pytest.raises(TraceFormatError, match="unreadable"):
            load_trace(path)

    def test_rejects_wrong_version(self, tmp_path, trace):
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 999
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_rejects_truncated_file(self, tmp_path, trace):
        path = tmp_path / "t.trace"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)
