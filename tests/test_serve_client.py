"""ServeClient transient-failure retry policy (off by default)."""

import urllib.error

import pytest

from repro.serve.client import ServeClient, ServeError, _transient


def make_client(retries=0, **kw):
    kw.setdefault("backoff", 0.001)  # keep test sleeps microscopic
    return ServeClient("http://127.0.0.1:1", retries=retries, **kw)


def flaky(failures, exc_factory, result=None):
    """A _request_once stub that fails ``failures`` times then succeeds."""
    calls = {"n": 0}

    def stub(method, path, payload=None):
        calls["n"] += 1
        if calls["n"] <= failures:
            raise exc_factory()
        return result if result is not None else {"ok": True}

    return stub, calls


class TestRetryPolicy:
    def test_off_by_default_first_error_surfaces(self, monkeypatch):
        client = make_client()
        stub, calls = flaky(1, ConnectionRefusedError)
        monkeypatch.setattr(client, "_request_once", stub)
        with pytest.raises(ConnectionRefusedError):
            client.health()
        assert calls["n"] == 1
        assert client.retries_performed == 0

    def test_connection_refused_retried_to_success(self, monkeypatch):
        client = make_client(retries=3)
        stub, calls = flaky(2, ConnectionRefusedError)
        monkeypatch.setattr(client, "_request_once", stub)
        assert client.health() == {"ok": True}
        assert calls["n"] == 3
        assert client.retries_performed == 2

    def test_connection_reset_inside_urlerror_retried(self, monkeypatch):
        client = make_client(retries=1)
        stub, calls = flaky(
            1, lambda: urllib.error.URLError(ConnectionResetError()))
        monkeypatch.setattr(client, "_request_once", stub)
        assert client.health() == {"ok": True}
        assert calls["n"] == 2

    def test_budget_exhaustion_reraises(self, monkeypatch):
        client = make_client(retries=2)
        stub, calls = flaky(10, ConnectionRefusedError)
        monkeypatch.setattr(client, "_request_once", stub)
        with pytest.raises(ConnectionRefusedError):
            client.health()
        assert calls["n"] == 3  # initial + 2 retries

    def test_429_honours_retry_after(self, monkeypatch):
        client = make_client(retries=1)
        stub, _ = flaky(1, lambda: ServeError(
            429, "rate-limited", "slow down", retry_after=0.01))
        monkeypatch.setattr(client, "_request_once", stub)
        slept = []
        monkeypatch.setattr("repro.serve.client.time.sleep", slept.append)
        assert client.health() == {"ok": True}
        assert slept and slept[0] >= 0.01  # server hint, not the tiny backoff

    def test_structured_4xx_never_retried(self, monkeypatch):
        client = make_client(retries=5)
        stub, calls = flaky(10, lambda: ServeError(400, "bad-cell", "nope"))
        monkeypatch.setattr(client, "_request_once", stub)
        with pytest.raises(ServeError):
            client.health()
        assert calls["n"] == 1
        assert client.retries_performed == 0

    def test_backoff_grows_exponentially(self, monkeypatch):
        client = make_client(retries=3, backoff=1.0)
        stub, _ = flaky(3, ConnectionRefusedError)
        monkeypatch.setattr(client, "_request_once", stub)
        slept = []
        monkeypatch.setattr("repro.serve.client.time.sleep", slept.append)
        client.health()
        # full jitter keeps each delay within [base/2, base]
        for attempt, delay in enumerate(slept):
            base = 1.0 * (2 ** attempt)
            assert base / 2 <= delay <= base


class TestTransientClassifier:
    def test_connection_errors_are_transient(self):
        assert _transient(ConnectionRefusedError())
        assert _transient(ConnectionResetError())
        assert _transient(TimeoutError())
        assert _transient(urllib.error.URLError(OSError(111, "refused")))

    def test_other_errors_are_not(self):
        assert not _transient(ValueError("nope"))
        assert not _transient(urllib.error.URLError("just a string reason"))
