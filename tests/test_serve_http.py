"""End-to-end: the ``repro serve`` daemon over real HTTP.

Covers the PR's acceptance criteria: results fetched over HTTP are
byte-identical (same ``SimResult`` payloads, same order) to a clean
serial ``run_many`` over the same cells — including after a
chaos-injected worker kill mid-job with the queue replaying from its
JSONL journal on daemon restart — and admission refusals surface as
structured 429 bodies, not silent queueing.
"""

import contextlib
import json

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import PROTOCOL_VERSION, expand_matrix
from repro.verify.chaos import ENV_VAR, ChaosSpec
from repro.workloads.suite import get_trace

OPS = 500

MATRIX = {"workloads": ["dotprod", "histogram"], "arches": ["ooo"],
          "seeds": [0, 1]}


@pytest.fixture(autouse=True)
def trace_cache(tmp_path, monkeypatch):
    """Isolate the trace disk cache (pool workers inherit the env)."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    get_trace.cache_clear()
    yield
    get_trace.cache_clear()


@contextlib.contextmanager
def serving(tmp_path, sub="serve", **kwargs):
    kwargs.setdefault("workers", 1)
    runner_kwargs = kwargs.pop("runner_kwargs", {})
    runner_kwargs.setdefault("target_ops", OPS)
    runner_kwargs.setdefault("cache_dir", str(tmp_path / f"{sub}-cache"))
    runner_kwargs.setdefault("retries", 3)
    daemon = ServeDaemon(str(tmp_path / f"{sub}-queue"),
                         runner_kwargs=runner_kwargs, **kwargs)
    daemon.start()
    try:
        yield daemon, ServeClient(daemon.url)
    finally:
        daemon.stop(timeout=30)


def serial_payloads(tmp_path, matrix=MATRIX):
    """The ground truth: a clean serial ``run_many`` over the expansion."""
    runner = ExperimentRunner(target_ops=OPS,
                              cache_dir=str(tmp_path / "serial-cache"))
    tasks = [cell.task(runner.seed) for cell in expand_matrix(matrix)]
    return [json.dumps(r.to_dict(), sort_keys=True)
            for r in runner.run_many(tasks, jobs=1)]


# ---------------------------------------------------------------------------
# byte-identity


class TestByteIdentity:
    def test_http_results_equal_clean_serial_run(self, tmp_path):
        expected = serial_payloads(tmp_path)
        with serving(tmp_path) as (daemon, client):
            body = client.submit(matrix=MATRIX)
            assert body["created"] is True
            status = client.wait(body["job_id"], timeout=120)
            assert status["status"] == "done"
            assert status["failed_cells"] == 0
            entries = client.stream_results(body["job_id"])
        assert [e["seq"] for e in entries] == list(range(len(expected)))
        got = [json.dumps(e["result"], sort_keys=True) for e in entries]
        assert got == expected

    def test_since_pagination_slices_the_same_stream(self, tmp_path):
        with serving(tmp_path) as (daemon, client):
            body = client.submit(matrix=MATRIX)
            client.wait(body["job_id"], timeout=120)
            whole = client.results(body["job_id"])
            tail = client.results(body["job_id"], since=2)
        assert whole["complete"] and tail["complete"]
        assert whole["results"][2:] == tail["results"]
        assert tail["next"] == len(whole["results"])

    def test_chaos_kill_and_daemon_restart_replay(self, tmp_path,
                                                  monkeypatch):
        """The hard acceptance path: submit, crash-stop the daemon with
        the job still queued (torn journal tail and all), restart under
        a worker-killing chaos spec, and still get byte-identical
        ordered results."""
        expected = serial_payloads(tmp_path)

        # life 1: accept the job but never run it (no workers)
        with serving(tmp_path, workers=0) as (daemon, client):
            body = client.submit(matrix=MATRIX, idempotency_key="replay-1")
            job_id = body["job_id"]
            assert client.status(job_id)["status"] == "queued"
        journal = tmp_path / "serve-queue" / "journal.jsonl"
        with open(journal, "a") as handle:
            handle.write('{"event": "job_enqueue", "job_id": "to')  # torn

        # life 2: every first attempt of every cell is killed mid-run
        monkeypatch.setenv(ENV_VAR, ChaosSpec(kill=1.0, salt=11).encode())
        with serving(tmp_path, sub="serve", workers=1, shard_size=4,
                     shard_jobs=2) as (daemon, client):
            assert daemon.queue.replayed_jobs == 1
            status = client.wait(job_id, timeout=180)
            assert status["status"] == "done"
            assert status["failed_cells"] == 0
            entries = client.stream_results(job_id)
            # idempotent resubmission finds the finished job, no rerun
            again = client.submit(matrix=MATRIX, idempotency_key="replay-1")
            assert again["job_id"] == job_id and again["created"] is False
        got = [json.dumps(e["result"], sort_keys=True) for e in entries]
        assert got == expected
        assert [e["seq"] for e in entries] == list(range(len(expected)))


# ---------------------------------------------------------------------------
# admission refusals over HTTP


class TestRefusals:
    def test_rate_limited_tenant_gets_structured_429(self, tmp_path):
        with serving(tmp_path, workers=0, rate=0.001, burst=1) \
                as (daemon, client):
            client.submit(cells=[{"workload": "dotprod", "arch": "ooo"}])
            with pytest.raises(ServeError) as excinfo:
                client.submit(cells=[{"workload": "dotprod", "arch": "ooo",
                                      "seed": 1}])
            assert excinfo.value.status == 429
            assert excinfo.value.code == "rate-limited"
            assert excinfo.value.retry_after > 0
            # refused, not silently queued
            assert client.health()["jobs"]["queued"] == 1

    def test_full_queue_gets_structured_429(self, tmp_path):
        with serving(tmp_path, workers=0, max_depth=1) as (daemon, client):
            client.submit(cells=[{"workload": "dotprod", "arch": "ooo"}])
            with pytest.raises(ServeError) as excinfo:
                client.submit(cells=[{"workload": "histogram",
                                      "arch": "ooo"}])
            assert excinfo.value.status == 429
            assert excinfo.value.code == "queue-full"

    def test_protocol_errors_are_400_with_codes(self, tmp_path):
        with serving(tmp_path, workers=0) as (daemon, client):
            cases = [
                ({"version": 99, "cells": [{"workload": "dotprod",
                                            "arch": "ooo"}]},
                 "protocol-version"),
                ({"cells": [{"workload": "dotprod", "arch": "ooo"}],
                  "matrix": MATRIX}, "bad-request"),
                ({"cells": [{"workload": "no_such_kernel", "arch": "ooo"}]},
                 "unknown-workload"),
                ({"cells": [{"workload": "dotprod", "arch": "ooo"}],
                  "priority": "urgent"}, "bad-priority"),
            ]
            for payload, code in cases:
                payload.setdefault("version", PROTOCOL_VERSION)
                with pytest.raises(ServeError) as excinfo:
                    client._request("POST", "/jobs", payload)
                assert excinfo.value.status == 400
                assert excinfo.value.code == code

    def test_unknown_job_and_path_are_404(self, tmp_path):
        with serving(tmp_path, workers=0) as (daemon, client):
            for path in ("/jobs/j-missing", "/jobs/j-missing/results",
                         "/nope"):
                with pytest.raises(ServeError) as excinfo:
                    client._request("GET", path)
                assert excinfo.value.status == 404


# ---------------------------------------------------------------------------
# observability + shutdown


class TestObservability:
    def test_healthz_reports_cache_corruption_tolerated(self, tmp_path):
        cells = [{"workload": "dotprod", "arch": "ooo"},
                 {"workload": "histogram", "arch": "ooo"}]
        with serving(tmp_path) as (daemon, client):
            health = client.health()
            assert health["status"] == "ok"
            assert health["protocol"] == PROTOCOL_VERSION
            assert health["cache_warnings"] == 0
            client.wait(client.submit(cells=cells)["job_id"], timeout=120)

        # corrupt every cached result; a fresh daemon life (fresh
        # runners, cold memory cache) must re-read them from disk
        cache = tmp_path / "serve-cache"
        corrupted = 0
        for path in cache.glob("*.json"):
            path.write_text("{corrupt garbage")
            corrupted += 1
        assert corrupted >= 2
        with serving(tmp_path) as (daemon, client):
            client.wait(client.submit(cells=cells)["job_id"], timeout=120)
            health = client.health()
            assert health["cache_warnings"] >= corrupted
            metrics = client.metrics()
            assert metrics["runner.cache_warnings"]["value"] >= corrupted

    def test_metricsz_exposes_queue_and_job_metrics(self, tmp_path):
        with serving(tmp_path) as (daemon, client):
            client.wait(client.submit(
                cells=[{"workload": "dotprod", "arch": "ooo"}])["job_id"],
                timeout=120)
            metrics = client.metrics()
        assert metrics["serve.queue.enqueued"]["value"] == 1
        assert metrics["serve.jobs.done"]["value"] == 1
        assert metrics["serve.queue.depth"]["value"] == 0
        assert "serve.job.seconds" in metrics

    def test_shutdownz_stops_the_daemon(self, tmp_path):
        with serving(tmp_path, workers=0) as (daemon, client):
            assert client.shutdown()["status"] == "stopping"
            assert daemon.wait(timeout=30)
