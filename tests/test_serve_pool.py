"""Worker pool: priority dispatch, resequencing, gap repair."""

import threading

from repro.serve.pool import WorkerPool
from repro.serve.protocol import parse_submit
from repro.serve.queue import DurableJobQueue, new_job_id
from repro.telemetry import read_run_log


def submit(queue, priority="batch", cells=2, tenant="default"):
    spec = parse_submit(
        {"priority": priority, "tenant": tenant,
         "cells": [{"workload": "dotprod", "arch": "ooo", "seed": seed}
                   for seed in range(cells)]},
        job_id=new_job_id())
    return queue.submit(spec)[0]


class StubResult:
    def __init__(self, task, ok=True):
        self.task = task
        self.ok = ok

    def to_dict(self):
        workload, config, seed = self.task
        return {"workload": workload, "arch": config.name, "seed": seed,
                "ok": self.ok}


class StubRunner:
    """Runner double: records calls, optionally gates or fails them."""

    seed = 7

    def __init__(self, gate=None, entered=None, fail_times=0, ok=True):
        self.gate = gate          # block run_many until set
        self.entered = entered    # signalled when run_many is entered
        self.fail_times = fail_times
        self.ok = ok
        self.calls = []
        self.cache_warnings = 0
        self.quarantined = {}

    def run_many(self, tasks, jobs=1, retries=None):
        self.calls.append(list(tasks))
        if self.entered is not None:
            self.entered.set()
        if self.gate is not None:
            self.gate.wait(timeout=10)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise MemoryError("simulated harness death")
        return [StubResult(task, ok=self.ok) for task in tasks]


def manual_pool(queue, runner, **kwargs):
    """A pool with no threads; tests drive dispatch/execution directly."""
    kwargs.setdefault("workers", 0)
    pool = WorkerPool(queue, lambda: runner, **kwargs)
    pool._runners.append(runner)
    return pool


def drain(pool, runner, limit=32):
    order = []
    for _ in range(limit):
        shard = pool._next_shard()
        if shard is None:
            return order
        order.append(shard.run.state.spec.job_id)
        try:
            pool._execute(runner, shard)
        except Exception as exc:
            pool._shard_lost(shard, exc)
    raise AssertionError("pool did not drain")


class TestPriorityDispatch:
    def test_interactive_overtakes_queued_batch_backlog(self, tmp_path):
        """The acceptance scenario, driven deterministically."""
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner()
        pool = manual_pool(queue, runner, shard_size=2)
        batch_a = submit(queue, "batch")
        batch_b = submit(queue, "batch")
        interactive = submit(queue, "interactive")
        order = drain(pool, runner)
        # the interactive job dispatches before EVERY queued batch job
        assert order[0] == interactive.spec.job_id
        assert order[1:] == [batch_a.spec.job_id, batch_b.spec.job_id]

    def test_interactive_shards_beat_new_batch_jobs(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner()
        pool = manual_pool(queue, runner, shard_size=1)
        interactive = submit(queue, "interactive", cells=2)  # 2 shards
        batch = submit(queue, "batch", cells=1)
        order = drain(pool, runner)
        assert order == [interactive.spec.job_id] * 2 + [batch.spec.job_id]

    def test_saturated_live_pool_runs_interactive_next(self, tmp_path):
        """The acceptance scenario against a real 1-worker pool."""
        queue = DurableJobQueue(str(tmp_path))
        gate, entered = threading.Event(), threading.Event()
        runner = StubRunner(gate=gate, entered=entered)
        pool = WorkerPool(queue, lambda: runner, workers=1, shard_size=4,
                          poll_interval=0.01)
        pool.start()
        try:
            first = submit(queue, "batch")
            assert entered.wait(timeout=10)  # worker is now wedged on it
            batch_b = submit(queue, "batch")
            batch_c = submit(queue, "batch")
            interactive = submit(queue, "interactive")
            gate.set()  # un-wedge; the worker picks its next shard
            deadline = threading.Event()
            for state in (first, batch_b, batch_c, interactive):
                while state.status != "done":
                    deadline.wait(0.01)
            dispatched = [job_id for job_id, _, _ in pool.dispatched]
            assert dispatched[0] == first.spec.job_id
            assert dispatched[1] == interactive.spec.job_id
            assert set(dispatched[2:]) == {batch_b.spec.job_id,
                                           batch_c.spec.job_id}
        finally:
            gate.set()
            pool.stop(timeout=10)


class TestResequencing:
    def test_results_arrive_in_submission_order(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner()
        pool = manual_pool(queue, runner, shard_size=2)
        state = submit(queue, cells=5)  # shards [0,1] [2,3] [4]
        shards = []
        while True:
            shard = pool._next_shard()
            if shard is None:
                break
            shards.append(shard)
        # execute the shards back-to-front: completions are out of order
        for shard in reversed(shards):
            pool._execute(runner, shard)
        entries, final = queue.results(state.spec.job_id)
        assert final
        assert [entry["seq"] for entry in entries] == [0, 1, 2, 3, 4]
        assert [entry["cell"]["seed"] for entry in entries] == list(range(5))
        assert state.status == "done" and state.failed_cells == 0

    def test_failed_cells_are_counted_not_fatal(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner(ok=False)
        pool = manual_pool(queue, runner)
        state = submit(queue, cells=2)
        drain(pool, runner)
        assert state.status == "done"
        assert state.failed_cells == 2
        entries, _ = queue.results(state.spec.job_id)
        assert all(entry["ok"] is False for entry in entries)


class TestGapRepair:
    def test_lost_shard_is_repaired_and_job_completes(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner(fail_times=1)
        pool = manual_pool(queue, runner, shard_size=2)
        state = submit(queue, cells=3)
        drain(pool, runner)
        assert state.status == "done" and state.failed_cells == 0
        entries, final = queue.results(state.spec.job_id)
        assert final and [e["seq"] for e in entries] == [0, 1, 2]
        repairs = read_run_log(str(tmp_path / "journal.jsonl"),
                               event="cell_repair")
        assert len(repairs) == 1
        assert repairs[0]["seqs"] == [0, 1]  # exactly the lost cells

    def test_repair_limit_exhaustion_fails_the_job(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner(fail_times=99)
        pool = manual_pool(queue, runner, shard_size=4, repair_limit=1)
        state = submit(queue, cells=2)
        drain(pool, runner)
        assert state.status == "failed"
        assert "MemoryError" in state.error
        # 1 original attempt + 1 repair round
        assert len(runner.calls) == 2

    def test_stop_requeues_unfinished_jobs(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner()
        pool = manual_pool(queue, runner, shard_size=1)
        state = submit(queue, cells=2)
        shard = pool._next_shard()
        pool._execute(runner, shard)  # 1 of 2 shards done; job unfinished
        drained, requeued = pool.stop()
        assert requeued == 1
        assert state.status == "queued"
        assert queue.next_job().spec.job_id == state.spec.job_id


class TestSampledJobs:
    """The pool applies a job's sampling knobs to every cell config."""

    def _submit_sampled(self, queue, sampling):
        payload = {"cells": [{"workload": "dotprod", "arch": "ooo", "seed": s}
                             for s in range(2)]}
        payload.update(sampling)
        spec = parse_submit(payload, job_id=new_job_id())
        return queue.submit(spec)[0]

    def test_sampling_knobs_reach_the_runner(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner()
        pool = manual_pool(queue, runner, shard_size=4)
        self._submit_sampled(
            queue, {"sampling": {"period": 5000, "window": 500}})
        drain(pool, runner)
        configs = [config for _, config, _ in runner.calls[0]]
        assert configs and all(c.sample_period == 5000 for c in configs)
        assert all(c.sample_window == 500 for c in configs)

    def test_sampled_true_uses_default_period(self, tmp_path):
        from repro.core.sampling import DEFAULT_SAMPLE_PERIOD

        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner()
        pool = manual_pool(queue, runner, shard_size=4)
        self._submit_sampled(queue, {"sampled": True})
        drain(pool, runner)
        configs = [config for _, config, _ in runner.calls[0]]
        assert all(c.sample_period == DEFAULT_SAMPLE_PERIOD for c in configs)

    def test_full_detail_jobs_keep_sampling_off(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        runner = StubRunner()
        pool = manual_pool(queue, runner, shard_size=4)
        submit(queue)
        drain(pool, runner)
        configs = [config for _, config, _ in runner.calls[0]]
        assert all(c.sample_period == 0 for c in configs)

    def test_sampling_survives_journal_restart(self, tmp_path):
        """A queued sampled job replayed from the journal keeps its knobs."""
        queue = DurableJobQueue(str(tmp_path))
        self._submit_sampled(queue, {"sampling": {"period": 9000}})
        replayed = DurableJobQueue(str(tmp_path))
        job = replayed.next_job()
        assert job.spec.sampling == {"period": 9000}
