"""Durable job queue: lanes, rate limiting, backpressure, replay."""

import json

import pytest

from repro.serve.protocol import JobSpec, parse_submit
from repro.serve.queue import (
    DurableJobQueue,
    QueueFull,
    RateLimited,
    TokenBucket,
    new_job_id,
)
from repro.telemetry import MetricsRegistry, read_run_log


def make_spec(job_id=None, priority="batch", tenant="default",
              idempotency_key=None, cells=2):
    payload = {
        "priority": priority,
        "tenant": tenant,
        "cells": [{"workload": "dotprod", "arch": "ooo", "seed": seed}
                  for seed in range(cells)],
    }
    if idempotency_key is not None:
        payload["idempotency_key"] = idempotency_key
    return parse_submit(payload, job_id=job_id or new_job_id())


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# token bucket


class TestTokenBucket:
    def test_burst_then_refusal_with_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        wait = bucket.try_take()
        assert wait is not None and wait > 0

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is not None
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token
        assert bucket.try_take() is None

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


# ---------------------------------------------------------------------------
# lanes / priority


class TestPriorityLanes:
    def test_interactive_dispatches_before_earlier_batch(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        batch, _ = queue.submit(make_spec(priority="batch"))
        inter, _ = queue.submit(make_spec(priority="interactive"))
        assert queue.next_job().spec.job_id == inter.spec.job_id
        assert queue.next_job().spec.job_id == batch.spec.job_id
        assert queue.next_job() is None

    def test_fifo_within_a_lane(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        ids = [queue.submit(make_spec())[0].spec.job_id for _ in range(3)]
        assert [queue.next_job().spec.job_id for _ in range(3)] == ids

    def test_class_filter_skips_other_lanes(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        queue.submit(make_spec(priority="batch"))
        assert queue.next_job(classes=("interactive",)) is None
        assert queue.next_job(classes=("batch",)) is not None

    def test_requeue_goes_to_lane_front(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        first, _ = queue.submit(make_spec())
        queue.submit(make_spec())
        state = queue.next_job()
        assert state.spec.job_id == first.spec.job_id
        queue.requeue(first.spec.job_id, "shutdown")
        assert queue.next_job().spec.job_id == first.spec.job_id


# ---------------------------------------------------------------------------
# admission control


class TestAdmission:
    def test_rate_limit_is_structured_not_silent(self, tmp_path):
        clock = FakeClock()
        queue = DurableJobQueue(str(tmp_path), rate=1.0, burst=1,
                                clock=clock)
        queue.submit(make_spec(tenant="alice"))
        with pytest.raises(RateLimited) as excinfo:
            queue.submit(make_spec(tenant="alice"))
        assert excinfo.value.code == "rate-limited"
        assert excinfo.value.retry_after > 0
        # the refused job was NOT queued
        assert queue.depth() == 1
        rejects = read_run_log(str(tmp_path / "journal.jsonl"),
                               event="job_reject")
        assert rejects and rejects[0]["code"] == "rate-limited"

    def test_rate_limit_is_per_tenant(self, tmp_path):
        clock = FakeClock()
        queue = DurableJobQueue(str(tmp_path), rate=1.0, burst=1,
                                clock=clock)
        queue.submit(make_spec(tenant="alice"))
        queue.submit(make_spec(tenant="bob"))  # bob has his own bucket

    def test_backpressure_when_depth_exhausted(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path), max_depth=1)
        queue.submit(make_spec())
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(make_spec())
        assert excinfo.value.code == "queue-full"
        assert queue.depth() == 1

    def test_dispatch_frees_depth(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path), max_depth=1)
        queue.submit(make_spec())
        queue.next_job()
        queue.submit(make_spec())  # must not raise

    def test_idempotency_returns_original_job(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        first, created = queue.submit(make_spec(idempotency_key="night-1"))
        assert created
        again, created = queue.submit(make_spec(idempotency_key="night-1"))
        assert not created
        assert again.spec.job_id == first.spec.job_id
        assert queue.depth() == 1

    def test_idempotency_is_per_tenant(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        a, _ = queue.submit(make_spec(tenant="alice", idempotency_key="k"))
        b, _ = queue.submit(make_spec(tenant="bob", idempotency_key="k"))
        assert a.spec.job_id != b.spec.job_id

    def test_depth_gauges_track_lanes(self, tmp_path):
        metrics = MetricsRegistry()
        queue = DurableJobQueue(str(tmp_path), metrics=metrics)
        queue.submit(make_spec(priority="interactive"))
        queue.submit(make_spec(priority="batch"))
        assert metrics.value("serve.queue.depth") == 2
        assert metrics.value("serve.queue.depth.interactive") == 1
        queue.next_job()
        assert metrics.value("serve.queue.depth") == 1


# ---------------------------------------------------------------------------
# durability / replay


class TestDurability:
    def test_pending_jobs_replay_in_order(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        ids = [queue.submit(make_spec())[0].spec.job_id for _ in range(3)]
        queue.next_job()  # dispatched but never finished -> still pending
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 3
        assert [reborn.next_job().spec.job_id for _ in range(3)] == ids

    def test_done_jobs_keep_results_across_restart(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec(cells=1))
        queue.next_job()
        envelope = {"seq": 0, "ok": True, "result": {"x": 1},
                    "cell": {"workload": "dotprod", "arch": "ooo",
                             "width": 8, "seed": 0}}
        queue.append_results(state.spec.job_id, [envelope])
        queue.mark_done(state.spec.job_id, failed_cells=0)
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 0
        assert reborn.jobs[state.spec.job_id].status == "done"
        entries, final = reborn.results(state.spec.job_id)
        assert final and entries == [envelope]

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec())
        queue.close()
        with open(tmp_path / "journal.jsonl", "a") as handle:
            handle.write('{"event": "job_enqueue", "job_id": "torn')

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 1
        assert reborn.next_job().spec.job_id == state.spec.job_id

    def test_failed_jobs_stay_failed(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec())
        queue.next_job()
        queue.mark_failed(state.spec.job_id, "worker exploded")
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 0
        assert reborn.jobs[state.spec.job_id].status == "failed"
        assert reborn.jobs[state.spec.job_id].error == "worker exploded"

    def test_idempotency_survives_restart(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec(idempotency_key="k"))
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        again, created = reborn.submit(make_spec(idempotency_key="k"))
        assert not created
        assert again.spec.job_id == state.spec.job_id

    def test_journal_spec_roundtrips(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec(priority="interactive", cells=3))
        queue.close()
        enqueues = read_run_log(str(tmp_path / "journal.jsonl"),
                                event="job_enqueue")
        spec = JobSpec.from_dict(enqueues[0]["spec"])
        assert json.dumps(spec.to_dict(), sort_keys=True) \
            == json.dumps(state.spec.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# journal compaction / torn-done recovery


def _envelopes(spec):
    return [{"seq": seq, "ok": True, "result": {"x": seq},
             "cell": cell.to_dict()}
            for seq, cell in enumerate(spec.cells)]


class TestCompaction:
    def _finish(self, queue, cells=2, fail=0):
        state, _ = queue.submit(make_spec(cells=cells))
        queue.next_job()
        queue.append_results(state.spec.job_id, _envelopes(state.spec))
        queue.mark_done(state.spec.job_id, failed_cells=fail)
        return state.spec.job_id

    def test_explicit_compact_drops_terminal_jobs(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        self._finish(queue)
        live, _ = queue.submit(make_spec())
        kept, dropped = queue.compact()
        assert dropped > 0
        records = read_run_log(str(tmp_path / "journal.jsonl"))
        job_ids = {r.get("job_id") for r in records if "job_id" in r}
        assert job_ids == {live.spec.job_id}
        assert records[-1]["event"] == "journal_compact"
        assert records[-1]["kept"] == kept

    def test_compacted_journal_still_replays_live_jobs(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        self._finish(queue)
        live, _ = queue.submit(make_spec())
        queue.compact()
        queue.close()
        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 1
        assert reborn.next_job().spec.job_id == live.spec.job_id

    def test_startup_compacts_automatically(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        for _ in range(3):
            self._finish(queue)
        queue.close()
        before = len((tmp_path / "journal.jsonl").read_text().splitlines())
        reborn = DurableJobQueue(str(tmp_path))
        reborn.close()
        after_lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(after_lines) < before
        events = [json.loads(line)["event"] for line in after_lines]
        assert events == ["journal_compact"]

    def test_crash_mid_compaction_leaves_old_journal(self, tmp_path,
                                                     monkeypatch):
        """The tmp+rename protocol: a crash before the rename loses
        nothing; the original journal is untouched."""
        import os as os_mod

        queue = DurableJobQueue(str(tmp_path))
        self._finish(queue)
        live, _ = queue.submit(make_spec())
        before = (tmp_path / "journal.jsonl").read_text()

        def boom(*args, **kwargs):
            raise RuntimeError("crash before rename")

        monkeypatch.setattr(os_mod, "replace", boom)
        with pytest.raises(RuntimeError):
            queue.compact()
        monkeypatch.undo()
        assert (tmp_path / "journal.jsonl").read_text() == before
        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 1
        assert reborn.next_job().spec.job_id == live.spec.job_id


class TestTornDoneRecovery:
    def _tear_job_done(self, tmp_path):
        """Finish a job, then strip job_done from the journal — the
        exact crash window between results-file rename and journaling."""
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec(cells=2))
        queue.next_job()
        queue.append_results(state.spec.job_id, _envelopes(state.spec))
        queue.mark_done(state.spec.job_id, failed_cells=0)
        queue.close()
        journal = tmp_path / "journal.jsonl"
        lines = [line for line in journal.read_text().splitlines()
                 if json.loads(line)["event"] != "job_done"]
        journal.write_text("\n".join(lines) + "\n")
        return state.spec.job_id

    def test_complete_results_file_recovers_as_done(self, tmp_path):
        job_id = self._tear_job_done(tmp_path)
        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.recovered_jobs == [job_id]
        assert reborn.replayed_jobs == 0  # NOT requeued / double-run
        state = reborn.jobs[job_id]
        assert state.status == "done"
        entries, final = reborn.results(job_id)
        assert final and len(entries) == 2

    def test_recovery_recomputes_failed_cells(self, tmp_path):
        job_id = self._tear_job_done(tmp_path)
        results_file = tmp_path / "results" / f"{job_id}.json"
        envelopes = json.loads(results_file.read_text())
        envelopes[0]["ok"] = False
        results_file.write_text(json.dumps(envelopes))
        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.jobs[job_id].failed_cells == 1

    def test_recovery_is_journaled(self, tmp_path):
        job_id = self._tear_job_done(tmp_path)
        reborn = DurableJobQueue(str(tmp_path))
        reborn.close()
        recovered = read_run_log(str(tmp_path / "journal.jsonl"),
                                 event="job_recovered")
        assert [r["job_id"] for r in recovered] == [job_id]

    def test_partial_results_file_still_requeues(self, tmp_path):
        """A torn RESULTS file (not just a torn journal) must re-run."""
        job_id = self._tear_job_done(tmp_path)
        results_file = tmp_path / "results" / f"{job_id}.json"
        envelopes = json.loads(results_file.read_text())
        results_file.write_text(json.dumps(envelopes[:1]))  # 1 of 2
        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.recovered_jobs == []
        assert reborn.replayed_jobs == 1
        assert reborn.jobs[job_id].status == "queued"

    def test_unparsable_results_file_still_requeues(self, tmp_path):
        job_id = self._tear_job_done(tmp_path)
        (tmp_path / "results" / f"{job_id}.json").write_text("{torn")
        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 1
        assert reborn.jobs[job_id].status == "queued"
