"""Durable job queue: lanes, rate limiting, backpressure, replay."""

import json

import pytest

from repro.serve.protocol import JobSpec, parse_submit
from repro.serve.queue import (
    DurableJobQueue,
    QueueFull,
    RateLimited,
    TokenBucket,
    new_job_id,
)
from repro.telemetry import MetricsRegistry, read_run_log


def make_spec(job_id=None, priority="batch", tenant="default",
              idempotency_key=None, cells=2):
    payload = {
        "priority": priority,
        "tenant": tenant,
        "cells": [{"workload": "dotprod", "arch": "ooo", "seed": seed}
                  for seed in range(cells)],
    }
    if idempotency_key is not None:
        payload["idempotency_key"] = idempotency_key
    return parse_submit(payload, job_id=job_id or new_job_id())


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# token bucket


class TestTokenBucket:
    def test_burst_then_refusal_with_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        wait = bucket.try_take()
        assert wait is not None and wait > 0

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is not None
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token
        assert bucket.try_take() is None

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


# ---------------------------------------------------------------------------
# lanes / priority


class TestPriorityLanes:
    def test_interactive_dispatches_before_earlier_batch(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        batch, _ = queue.submit(make_spec(priority="batch"))
        inter, _ = queue.submit(make_spec(priority="interactive"))
        assert queue.next_job().spec.job_id == inter.spec.job_id
        assert queue.next_job().spec.job_id == batch.spec.job_id
        assert queue.next_job() is None

    def test_fifo_within_a_lane(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        ids = [queue.submit(make_spec())[0].spec.job_id for _ in range(3)]
        assert [queue.next_job().spec.job_id for _ in range(3)] == ids

    def test_class_filter_skips_other_lanes(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        queue.submit(make_spec(priority="batch"))
        assert queue.next_job(classes=("interactive",)) is None
        assert queue.next_job(classes=("batch",)) is not None

    def test_requeue_goes_to_lane_front(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        first, _ = queue.submit(make_spec())
        queue.submit(make_spec())
        state = queue.next_job()
        assert state.spec.job_id == first.spec.job_id
        queue.requeue(first.spec.job_id, "shutdown")
        assert queue.next_job().spec.job_id == first.spec.job_id


# ---------------------------------------------------------------------------
# admission control


class TestAdmission:
    def test_rate_limit_is_structured_not_silent(self, tmp_path):
        clock = FakeClock()
        queue = DurableJobQueue(str(tmp_path), rate=1.0, burst=1,
                                clock=clock)
        queue.submit(make_spec(tenant="alice"))
        with pytest.raises(RateLimited) as excinfo:
            queue.submit(make_spec(tenant="alice"))
        assert excinfo.value.code == "rate-limited"
        assert excinfo.value.retry_after > 0
        # the refused job was NOT queued
        assert queue.depth() == 1
        rejects = read_run_log(str(tmp_path / "journal.jsonl"),
                               event="job_reject")
        assert rejects and rejects[0]["code"] == "rate-limited"

    def test_rate_limit_is_per_tenant(self, tmp_path):
        clock = FakeClock()
        queue = DurableJobQueue(str(tmp_path), rate=1.0, burst=1,
                                clock=clock)
        queue.submit(make_spec(tenant="alice"))
        queue.submit(make_spec(tenant="bob"))  # bob has his own bucket

    def test_backpressure_when_depth_exhausted(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path), max_depth=1)
        queue.submit(make_spec())
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(make_spec())
        assert excinfo.value.code == "queue-full"
        assert queue.depth() == 1

    def test_dispatch_frees_depth(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path), max_depth=1)
        queue.submit(make_spec())
        queue.next_job()
        queue.submit(make_spec())  # must not raise

    def test_idempotency_returns_original_job(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        first, created = queue.submit(make_spec(idempotency_key="night-1"))
        assert created
        again, created = queue.submit(make_spec(idempotency_key="night-1"))
        assert not created
        assert again.spec.job_id == first.spec.job_id
        assert queue.depth() == 1

    def test_idempotency_is_per_tenant(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        a, _ = queue.submit(make_spec(tenant="alice", idempotency_key="k"))
        b, _ = queue.submit(make_spec(tenant="bob", idempotency_key="k"))
        assert a.spec.job_id != b.spec.job_id

    def test_depth_gauges_track_lanes(self, tmp_path):
        metrics = MetricsRegistry()
        queue = DurableJobQueue(str(tmp_path), metrics=metrics)
        queue.submit(make_spec(priority="interactive"))
        queue.submit(make_spec(priority="batch"))
        assert metrics.value("serve.queue.depth") == 2
        assert metrics.value("serve.queue.depth.interactive") == 1
        queue.next_job()
        assert metrics.value("serve.queue.depth") == 1


# ---------------------------------------------------------------------------
# durability / replay


class TestDurability:
    def test_pending_jobs_replay_in_order(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        ids = [queue.submit(make_spec())[0].spec.job_id for _ in range(3)]
        queue.next_job()  # dispatched but never finished -> still pending
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 3
        assert [reborn.next_job().spec.job_id for _ in range(3)] == ids

    def test_done_jobs_keep_results_across_restart(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec(cells=1))
        queue.next_job()
        envelope = {"seq": 0, "ok": True, "result": {"x": 1},
                    "cell": {"workload": "dotprod", "arch": "ooo",
                             "width": 8, "seed": 0}}
        queue.append_results(state.spec.job_id, [envelope])
        queue.mark_done(state.spec.job_id, failed_cells=0)
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 0
        assert reborn.jobs[state.spec.job_id].status == "done"
        entries, final = reborn.results(state.spec.job_id)
        assert final and entries == [envelope]

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec())
        queue.close()
        with open(tmp_path / "journal.jsonl", "a") as handle:
            handle.write('{"event": "job_enqueue", "job_id": "torn')

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 1
        assert reborn.next_job().spec.job_id == state.spec.job_id

    def test_failed_jobs_stay_failed(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec())
        queue.next_job()
        queue.mark_failed(state.spec.job_id, "worker exploded")
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        assert reborn.replayed_jobs == 0
        assert reborn.jobs[state.spec.job_id].status == "failed"
        assert reborn.jobs[state.spec.job_id].error == "worker exploded"

    def test_idempotency_survives_restart(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec(idempotency_key="k"))
        queue.close()

        reborn = DurableJobQueue(str(tmp_path))
        again, created = reborn.submit(make_spec(idempotency_key="k"))
        assert not created
        assert again.spec.job_id == state.spec.job_id

    def test_journal_spec_roundtrips(self, tmp_path):
        queue = DurableJobQueue(str(tmp_path))
        state, _ = queue.submit(make_spec(priority="interactive", cells=3))
        queue.close()
        enqueues = read_run_log(str(tmp_path / "journal.jsonl"),
                                event="job_enqueue")
        spec = JobSpec.from_dict(enqueues[0]["spec"])
        assert json.dumps(spec.to_dict(), sort_keys=True) \
            == json.dumps(state.spec.to_dict(), sort_keys=True)
