"""Resequencer: ordered release, buffering, duplicates, gap detection."""

import pytest

from repro.serve.resequencer import Resequencer


class TestRelease:
    def test_in_order_arrivals_release_immediately(self):
        reseq = Resequencer(3)
        assert reseq.push(0, "a") == [(0, "a")]
        assert reseq.push(1, "b") == [(1, "b")]
        assert reseq.push(2, "c") == [(2, "c")]
        assert reseq.complete

    def test_out_of_order_arrivals_buffer_until_gap_fills(self):
        reseq = Resequencer(4)
        assert reseq.push(2, "c") == []
        assert reseq.push(1, "b") == []
        assert reseq.buffered == 2
        # seq 0 unblocks the whole contiguous prefix, in order
        assert reseq.push(0, "a") == [(0, "a"), (1, "b"), (2, "c")]
        assert reseq.buffered == 0
        assert reseq.next_expected == 3
        assert not reseq.complete
        assert reseq.push(3, "d") == [(3, "d")]
        assert reseq.complete

    def test_reverse_order_releases_everything_at_once(self):
        reseq = Resequencer(5)
        for seq in (4, 3, 2, 1):
            assert reseq.push(seq, seq) == []
        released = reseq.push(0, 0)
        assert [seq for seq, _ in released] == [0, 1, 2, 3, 4]


class TestDuplicates:
    def test_duplicate_of_emitted_seq_is_dropped(self):
        reseq = Resequencer(2)
        reseq.push(0, "a")
        assert reseq.push(0, "a-again") == []
        assert reseq.duplicates == 1
        assert reseq.emitted == 1

    def test_duplicate_of_buffered_seq_is_dropped(self):
        reseq = Resequencer(3)
        reseq.push(2, "c")
        assert reseq.push(2, "c-again") == []
        assert reseq.duplicates == 1
        # the original payload survives, not the duplicate
        assert reseq.push(1, "b") == []
        assert reseq.push(0, "a") == [(0, "a"), (1, "b"), (2, "c")]


class TestValidation:
    def test_out_of_range_sequence_raises(self):
        reseq = Resequencer(2)
        with pytest.raises(ValueError):
            reseq.push(2, "x")
        with pytest.raises(ValueError):
            reseq.push(-1, "x")

    def test_zero_expected_rejected(self):
        with pytest.raises(ValueError):
            Resequencer(0)


class TestGapDetection:
    def test_no_gaps_when_stream_is_clean(self):
        reseq = Resequencer(3)
        reseq.push(0, "a")
        assert reseq.missing() == []

    def test_hole_below_high_buffered_seq_is_lost(self):
        reseq = Resequencer(5)
        reseq.push(0, "a")
        reseq.push(3, "d")  # 1 and 2 are holes below the high-water mark
        assert reseq.missing() == [1, 2]

    def test_explicit_high_water_widens_the_check(self):
        reseq = Resequencer(5)
        reseq.push(0, "a")
        # nothing buffered beyond 0, so the default view sees no loss...
        assert reseq.missing() == []
        # ...but once the pool knows nothing is in flight, all of it is
        assert reseq.missing(high_water=5) == [1, 2, 3, 4]

    def test_repair_fills_the_gap(self):
        reseq = Resequencer(3)
        reseq.push(2, "c")
        for seq in reseq.missing():
            reseq.push(seq, f"repair-{seq}")
        assert reseq.complete
