"""End-to-end span tracing: ids, nesting, wire round-trips, identity.

Covers the observability PR's acceptance criteria:

* cell span ids survive the serve HTTP round-trip — the ids the daemon
  records are the ids the result-stream envelopes carry back;
* a 2-shard distributed campaign merges into a single trace where
  every expected cell span appears exactly once under its shard span;
* every cell span nests under exactly one parent (job dispatch span or
  shard span) — no orphans, no double-parents;
* a traced run is byte-identical to an untraced run of the same cells
  (the whole plane is nullable).
"""

import collections
import contextlib
import json

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.core.config import config_for
from repro.distrib import (CampaignSpec, campaign_root_context,
                           campaign_trace_id, merge_trace, run_shard,
                           shard_spans_path)
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.telemetry.spans import (Span, SpanContext, SpanRecorder,
                                   derive_span_id, derive_trace_id,
                                   merge_spans, new_span_id, new_trace_id,
                                   read_spans, span_tree, spans_to_chrome)
from repro.workloads.suite import get_trace

OPS = 400


@pytest.fixture(autouse=True)
def trace_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_SPANS", raising=False)
    get_trace.cache_clear()
    yield
    get_trace.cache_clear()


# ---------------------------------------------------------------------------
# primitives


class TestSpanPrimitives:
    def test_derived_ids_are_deterministic_and_distinct(self):
        tid = derive_trace_id("campaign", "abc")
        assert tid == derive_trace_id("campaign", "abc")
        assert tid != derive_trace_id("campaign", "abd")
        sid = derive_span_id(tid, "cell", "key1")
        assert sid == derive_span_id(tid, "cell", "key1")
        assert sid != derive_span_id(tid, "cell", "key2")

    def test_context_round_trip_and_validation(self):
        ctx = SpanContext(new_trace_id(), new_span_id())
        assert SpanContext.from_dict(ctx.to_dict()) == ctx
        with pytest.raises(ValueError):
            SpanContext.from_dict({"trace_id": "NOT HEX", "span_id": "ab"})

    def test_recorder_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanRecorder(str(path)) as rec:
            root = rec.start("campaign", tasks=2)
            child = rec.start("cell", parent=root, workload="dotprod")
            rec.finish(child)
            rec.finish(root)
        spans = read_spans(str(path))
        by_name = {s.name: s for s in spans}
        assert set(by_name) == {"campaign", "cell"}
        assert by_name["cell"].parent_id == by_name["campaign"].span_id
        assert by_name["cell"].trace_id == by_name["campaign"].trace_id
        assert all(s.end_t is not None for s in spans)

    def test_merge_dedupes_preferring_finished(self):
        tid = new_trace_id()
        open_span = Span(name="cell", trace_id=tid, span_id="a" * 16,
                         start_t=1.0)
        done_span = Span(name="cell", trace_id=tid, span_id="a" * 16,
                         start_t=1.0, end_t=2.0)
        merged = merge_spans([open_span, done_span])
        assert len(merged) == 1
        assert merged[0].end_t == 2.0

    def test_chrome_export_gives_each_shard_its_own_pid(self, tmp_path):
        tid = new_trace_id()
        root = Span(name="campaign", trace_id=tid,
                    span_id=derive_span_id(tid, "campaign"),
                    start_t=0.0, end_t=4.0)
        spans = [root]
        for shard in range(2):
            top = Span(name="shard", trace_id=tid,
                       span_id=derive_span_id(tid, "shard", shard),
                       parent_id=root.span_id, start_t=0.0, end_t=3.0)
            spans.append(top)
            spans.append(Span(
                name="cell", trace_id=tid,
                span_id=derive_span_id(tid, "cell", shard),
                parent_id=top.span_id, start_t=1.0, end_t=2.0))
        out = tmp_path / "trace.json"
        spans_to_chrome(spans, str(out))
        doc = json.loads(out.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        pid_of = {e["args"]["span_id"]: e["pid"] for e in events}
        shard_pids = {pid_of[derive_span_id(tid, "shard", s)]
                      for s in range(2)}
        assert len(shard_pids) == 2  # shards never share a process row
        for shard in range(2):
            assert (pid_of[derive_span_id(tid, "cell", shard)]
                    == pid_of[derive_span_id(tid, "shard", shard)])
        assert pid_of[root.span_id] not in shard_pids


# ---------------------------------------------------------------------------
# runner-level tracing


def _tasks():
    return [("dotprod", config_for("ooo")), ("dotprod", config_for("inorder"))]


class TestRunnerTracing:
    def test_traced_run_byte_identical_to_untraced(self, tmp_path):
        plain = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "plain"), run_log="")
        expected = [json.dumps(r.to_dict(), sort_keys=True)
                    for r in plain.run_many(_tasks(), jobs=1)]
        traced = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "traced"), run_log="",
            spans=str(tmp_path / "spans.jsonl"))
        got = [json.dumps(r.to_dict(), sort_keys=True)
               for r in traced.run_many(_tasks(), jobs=1)]
        assert got == expected
        assert read_spans(str(tmp_path / "spans.jsonl"))

    def test_cells_parent_under_campaign_root(self, tmp_path):
        runner = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "cache"), run_log="",
            spans=str(tmp_path / "spans.jsonl"))
        runner.run_many(_tasks(), jobs=1)
        spans = read_spans(str(tmp_path / "spans.jsonl"))
        tree = span_tree(spans)
        roots = tree[None]
        assert [r.name for r in roots] == ["campaign"]
        cells = [s for s in spans if s.name == "cell"]
        assert len(cells) == len(_tasks())
        campaign = roots[0]
        for cell in cells:
            assert cell.parent_id == campaign.span_id

    def test_run_log_stamped_with_trace_ids(self, tmp_path):
        from repro.telemetry.runlog import read_run_log

        parent = SpanContext(new_trace_id(), new_span_id())
        runner = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "cache"),
            run_log=str(tmp_path / "run.jsonl"), trace_ctx=parent)
        runner.run_many(_tasks(), jobs=1)
        runner.run_log.close()
        finishes = read_run_log(str(tmp_path / "run.jsonl"), event="finish")
        assert finishes
        assert all(r["trace_id"] == parent.trace_id for r in finishes)
        assert all(r["parent_id"] == parent.span_id for r in finishes)
        assert len({r["span_id"] for r in finishes}) == len(finishes)

    def test_spans_off_writes_nothing(self, tmp_path):
        runner = ExperimentRunner(
            target_ops=OPS, cache_dir=str(tmp_path / "cache"), run_log="")
        runner.run_many(_tasks(), jobs=1)
        assert runner.spans is None
        assert not list(tmp_path.glob("*.jsonl"))


# ---------------------------------------------------------------------------
# serve HTTP round-trip


@contextlib.contextmanager
def serving(tmp_path, **kwargs):
    kwargs.setdefault("workers", 1)
    daemon = ServeDaemon(
        str(tmp_path / "queue"),
        runner_kwargs=dict(target_ops=OPS,
                           cache_dir=str(tmp_path / "serve-cache"),
                           run_log=""),
        spans=True, **kwargs)
    daemon.start()
    try:
        yield daemon, ServeClient(daemon.url)
    finally:
        daemon.stop(timeout=30)


class TestServeRoundTrip:
    def test_cell_span_ids_survive_http_round_trip(self, tmp_path):
        parent = SpanContext(new_trace_id(), new_span_id())
        with serving(tmp_path) as (daemon, client):
            job = client.submit(
                cells=[{"workload": "dotprod", "arch": "ooo", "width": 4},
                       {"workload": "dotprod", "arch": "inorder",
                        "width": 4}],
                trace=parent.to_dict())
            status = client.wait(job["job_id"], timeout=120)
            assert status["status"] == "done"
            entries = client.stream_results(job["job_id"])
            spans_path = daemon.spans.path
        assert all(e["trace"]["trace_id"] == parent.trace_id
                   for e in entries)
        spans = read_spans(str(spans_path))
        by_id = {s.span_id: s for s in spans}
        for entry in entries:
            span = by_id[entry["trace"]["span_id"]]
            assert span.name == "cell"
            dispatch = by_id[span.parent_id]
            assert dispatch.name == "dispatch_shard"
            job_span = by_id[dispatch.parent_id]
            assert job_span.name == "job"
            assert job_span.parent_id == parent.span_id

    def test_every_cell_span_has_exactly_one_parent(self, tmp_path):
        with serving(tmp_path) as (daemon, client):
            job = client.submit(
                matrix={"workloads": ["dotprod"],
                        "arches": ["ooo", "inorder"], "widths": [4]},
                trace=SpanContext(new_trace_id(), new_span_id()).to_dict())
            client.wait(job["job_id"], timeout=120)
            spans_path = daemon.spans.path
        spans = merge_spans(read_spans(str(spans_path)))
        by_id = {s.span_id: s for s in spans}
        cells = [s for s in spans if s.name == "cell"]
        assert cells
        for cell in cells:
            assert cell.parent_id in by_id
        # dedup means each id appears once: exactly one parent each
        assert len({c.span_id for c in cells}) == len(cells)

    def test_untraced_submit_on_traced_daemon_gets_derived_ids(
            self, tmp_path):
        # daemon-side tracing covers jobs whose client sent no parent:
        # the trace id is derived from the job id, so the operator can
        # still reconstruct the job from the daemon's span file alone
        with serving(tmp_path) as (daemon, client):
            job = client.submit(
                cells=[{"workload": "dotprod", "arch": "ooo", "width": 4}])
            client.wait(job["job_id"], timeout=120)
            entries = client.stream_results(job["job_id"])
        expected = derive_trace_id("job", job["job_id"])
        assert all(e["trace"]["trace_id"] == expected for e in entries)

    def test_spans_disabled_daemon_emits_no_trace_field(self, tmp_path):
        daemon = ServeDaemon(
            str(tmp_path / "plain-queue"), workers=1,
            runner_kwargs=dict(target_ops=OPS,
                               cache_dir=str(tmp_path / "plain-cache"),
                               run_log=""))
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            job = client.submit(
                cells=[{"workload": "dotprod", "arch": "ooo", "width": 4}])
            client.wait(job["job_id"], timeout=120)
            entries = client.stream_results(job["job_id"])
        finally:
            daemon.stop(timeout=30)
        assert daemon.spans is None
        assert all("trace" not in e for e in entries)
        assert not (tmp_path / "plain-queue" / "spans.jsonl").exists()

    def test_bad_trace_rejected_as_protocol_error(self, tmp_path):
        from repro.serve.client import ServeError

        with serving(tmp_path) as (daemon, client):
            with pytest.raises(ServeError) as err:
                client.submit(
                    cells=[{"workload": "dotprod", "arch": "ooo"}],
                    trace={"trace_id": "NOT HEX", "span_id": "zz"})
            assert err.value.code == "bad-trace"


# ---------------------------------------------------------------------------
# distributed shard merge


class TestDistributedTraceMerge:
    SPEC = CampaignSpec(workloads=("dotprod",), arches=("ooo", "inorder"),
                        widths=(4, 8), n_shards=2, ops=OPS)

    def _run_campaign(self, tmp_path):
        cdir = tmp_path / "campaign"
        cache = str(tmp_path / "camp-cache")
        for shard in range(self.SPEC.n_shards):
            run_shard(self.SPEC, shard, cdir, cache_dir=cache, spans=True)
        return cdir

    def test_two_shard_merge_single_trace_every_cell_once(self, tmp_path):
        cdir = self._run_campaign(tmp_path)
        for shard in range(2):
            assert shard_spans_path(cdir, shard, 2).exists()
        merged = merge_trace(self.SPEC, cdir, chrome=True)
        assert len({s.trace_id for s in merged}) == 1
        assert {s.trace_id for s in merged} == {campaign_trace_id(self.SPEC)}
        cells = [s for s in merged if s.name == "cell"]
        assert len(cells) == len(self.SPEC.cells())
        assert len({c.span_id for c in cells}) == len(cells)
        shard_ids = {s.span_id: s for s in merged if s.name == "shard"}
        assert len(shard_ids) == 2
        # every cell nests under exactly one shard span, and the
        # partition matches the salted-hash assignment
        per_shard = collections.Counter()
        for cell in cells:
            assert cell.parent_id in shard_ids
            per_shard[cell.parent_id] += 1
        assert sum(per_shard.values()) == len(cells)
        root = campaign_root_context(self.SPEC)
        for span in shard_ids.values():
            assert span.parent_id == root.span_id
        assert any(s.span_id == root.span_id for s in merged)
        assert (cdir / "merged-spans.jsonl").exists()
        assert (cdir / "trace.json").exists()

    def test_rerun_shard_does_not_duplicate_cells(self, tmp_path):
        cdir = self._run_campaign(tmp_path)
        # shard 0 re-run on another "host": same deterministic ids, so
        # the merged trace must not double-count its cells
        run_shard(self.SPEC, 0, cdir,
                  cache_dir=str(tmp_path / "camp-cache"), spans=True)
        merged = merge_trace(self.SPEC, cdir)
        cells = [s for s in merged if s.name == "cell"]
        assert len(cells) == len(self.SPEC.cells())

    def test_traced_campaign_results_identical_to_untraced(self, tmp_path):
        from repro.distrib import merge_shards

        cdir = self._run_campaign(tmp_path)
        traced = merge_shards(self.SPEC, cdir,
                              cache_dir=str(tmp_path / "camp-cache"))
        plain_dir = tmp_path / "plain"
        for shard in range(self.SPEC.n_shards):
            run_shard(self.SPEC, shard, plain_dir,
                      cache_dir=str(tmp_path / "plain-cache"), spans=False)
        plain = merge_shards(self.SPEC, plain_dir,
                             cache_dir=str(tmp_path / "plain-cache"))
        assert traced.complete and plain.complete
        assert (json.dumps(traced.envelopes, sort_keys=True)
                == json.dumps(plain.envelopes, sort_keys=True))
