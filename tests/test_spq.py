"""Tests for the SPQ (load-delay-tracking priority queue) extension."""

import pytest

from repro.core import config_for, simulate
from repro.core.pipeline import Pipeline
from repro.sched.spq import DEFAULT_LOAD_DELAY, LoadDelayTracker
from repro.workloads import build_trace


class TestLoadDelayTracker:
    def test_default_prediction(self):
        tracker = LoadDelayTracker()
        assert tracker.predict(0x40) == DEFAULT_LOAD_DELAY

    def test_records_and_predicts(self):
        tracker = LoadDelayTracker()
        tracker.record(0x40, 250)
        assert tracker.predict(0x40) == 250

    def test_pc_aliasing_by_mask(self):
        tracker = LoadDelayTracker(entries=16)
        tracker.record(0, 99)
        assert tracker.predict(16) == 99  # aliases entry 0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            LoadDelayTracker(entries=10)


class TestSPQScheduler:
    def test_config_preset(self):
        cfg = config_for("spq")
        assert cfg.scheduler.kind == "spq"
        assert cfg.scheduler.num_piqs == 8

    @pytest.mark.parametrize("workload", ["histogram", "dag_wide",
                                          "hash_probe", "matmul_tile"])
    def test_commits_everything(self, workload):
        trace = build_trace(workload, target_ops=1500)
        result = simulate(trace, config_for("spq"))
        assert result.stats.committed == len(trace)

    def test_queue_contents_sorted_by_prediction(self):
        trace = build_trace("mixed_int_fp", target_ops=1500)
        pipeline = Pipeline(trace, config_for("spq"))
        sched = pipeline.scheduler
        original = sched.select

        def checked(cycle):
            for queue in sched.queues:
                keys = [(t, s) for t, s, _ in queue]
                assert keys == sorted(keys)
            return original(cycle)

        sched.select = checked
        result = pipeline.run()
        assert result.stats.committed == len(trace)

    def test_tracker_learns_from_real_loads(self):
        trace = build_trace("pointer_chase", target_ops=1500)
        pipeline = Pipeline(trace, config_for("spq"))
        pipeline.run()
        # pointer-chase loads miss to DRAM: predictions must have grown
        pcs = {op.pc for op in trace if op.is_load}
        learned = max(pipeline.scheduler.tracker.predict(pc) for pc in pcs)
        assert learned > DEFAULT_LOAD_DELAY

    def test_performance_beats_inorder(self):
        trace = build_trace("hash_probe", target_ops=3000)
        ino = simulate(trace, config_for("inorder"))
        spq = simulate(trace, config_for("spq"))
        assert spq.cycles < ino.cycles

    def test_survives_flush_storm(self):
        import dataclasses

        trace = build_trace("histogram", target_ops=2500)
        cfg = dataclasses.replace(
            config_for("spq"), mdp_enabled=False, name="spq-nomdp"
        )
        pipeline = Pipeline(trace, cfg, check_invariants=True)
        result = pipeline.run()
        assert result.stats.committed == len(trace)
        assert result.stats.order_violations > 0

    def test_stats_exposed(self):
        trace = build_trace("dag_wide", target_ops=1500)
        result = simulate(trace, config_for("spq"))
        sched = result.stats.scheduler
        assert sched["issued_total"] == result.stats.issued
        assert "mispredicted_heads" in sched
