"""Tests for the parameter-sweep helper."""

import pytest

from repro.analysis import ExperimentRunner
from repro.analysis.sweep import SweepPoint, SweepResult, sweep


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    runner = ExperimentRunner(
        target_ops=1000, cache_dir=str(tmp_path_factory.mktemp("sweep"))
    )
    return sweep(
        {"arch": ["inorder", "ooo"], "width": [2, 8]},
        workloads=["hash_probe", "spill_fill"],
        runner=runner,
    )


def test_full_cartesian_product(result):
    assert len(result) == 2 * 2 * 2  # arch x width x workload


def test_filter_by_params(result):
    sub = result.filter(arch="ooo")
    assert len(sub) == 4
    assert all(p.params["arch"] == "ooo" for p in sub.points)
    sub2 = result.filter(arch="ooo", width=8)
    assert len(sub2) == 2


def test_geomean_ipc_ordering(result):
    assert result.geomean_ipc(arch="ooo", width=8) > result.geomean_ipc(
        arch="inorder", width=2
    )


def test_best_by_metric(result):
    best = result.best(lambda p: p.ipc)
    assert isinstance(best, SweepPoint)
    assert best.ipc == max(p.ipc for p in result.points)


def test_table_shape(result):
    rows = result.table()
    assert len(rows) == len(result)
    params, workload, value = rows[0]
    assert "arch" in params and isinstance(value, float)


def test_empty_best_raises():
    with pytest.raises(ValueError):
        SweepResult([]).best(lambda p: p.ipc)


# ---------------------------------------------------------------------------
# failure aggregation: quarantined cells degrade the sweep, never crash it


@pytest.fixture(scope="module")
def failing_result(tmp_path_factory):
    """A sweep where one workload axis value cannot possibly run."""
    runner = ExperimentRunner(
        target_ops=600,
        cache_dir=str(tmp_path_factory.mktemp("failing-sweep")),
        retries=0,
    )
    return sweep(
        {"arch": ["inorder", "ooo"]},
        workloads=["dotprod", "no_such_kernel"],
        runner=runner,
    )


def test_quarantined_cells_become_failed_points(failing_result):
    from repro.analysis.runner import FailedResult

    assert len(failing_result) == 4  # the broken cells are NOT dropped
    failed = failing_result.failures
    assert len(failed) == 2
    assert all(isinstance(p.result, FailedResult) for p in failed)
    assert all(p.workload == "no_such_kernel" for p in failed)
    assert all(not p.ok for p in failed)


def test_healthy_cells_are_untouched_by_failures(failing_result):
    healthy = [p for p in failing_result.points if p.ok]
    assert len(healthy) == 2
    assert all(p.workload == "dotprod" for p in healthy)
    assert all(p.ipc > 0 for p in healthy)


def test_aggregations_skip_failures_instead_of_raising(failing_result):
    # geomean over a sweep containing failures: healthy cells only
    assert failing_result.geomean_ipc() > 0
    assert failing_result.geomean_ipc(arch="ooo") > 0
    # best never selects (or touches the ipc of) a quarantined cell
    best = failing_result.best(lambda p: p.ipc)
    assert best.ok and best.workload == "dotprod"


def test_filter_keeps_failures_visible(failing_result):
    sub = failing_result.filter(arch="ooo")
    assert len(sub) == 2
    assert len(sub.failures) == 1


def test_all_failed_sweep_raises_only_on_best(failing_result):
    from repro.analysis.sweep import SweepResult

    broken = SweepResult(failing_result.failures)
    assert len(broken.failures) == 2
    with pytest.raises(ValueError):
        broken.best(lambda p: p.ipc)


def test_sweep_with_custom_builder(tmp_path):
    from repro.core.config import config_for

    runner = ExperimentRunner(target_ops=800, cache_dir=str(tmp_path))
    result = sweep(
        {"num_piqs": [3, 7]},
        config_builder=lambda num_piqs: config_for(
            "ballerino", num_piqs=num_piqs
        ),
        workloads=["dag_wide"],
        runner=runner,
    )
    assert len(result) == 2
    assert result.geomean_ipc(num_piqs=7) >= result.geomean_ipc(num_piqs=3) * 0.95
