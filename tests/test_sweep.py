"""Tests for the parameter-sweep helper."""

import pytest

from repro.analysis import ExperimentRunner
from repro.analysis.sweep import SweepPoint, SweepResult, sweep


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    runner = ExperimentRunner(
        target_ops=1000, cache_dir=str(tmp_path_factory.mktemp("sweep"))
    )
    return sweep(
        {"arch": ["inorder", "ooo"], "width": [2, 8]},
        workloads=["hash_probe", "spill_fill"],
        runner=runner,
    )


def test_full_cartesian_product(result):
    assert len(result) == 2 * 2 * 2  # arch x width x workload


def test_filter_by_params(result):
    sub = result.filter(arch="ooo")
    assert len(sub) == 4
    assert all(p.params["arch"] == "ooo" for p in sub.points)
    sub2 = result.filter(arch="ooo", width=8)
    assert len(sub2) == 2


def test_geomean_ipc_ordering(result):
    assert result.geomean_ipc(arch="ooo", width=8) > result.geomean_ipc(
        arch="inorder", width=2
    )


def test_best_by_metric(result):
    best = result.best(lambda p: p.ipc)
    assert isinstance(best, SweepPoint)
    assert best.ipc == max(p.ipc for p in result.points)


def test_table_shape(result):
    rows = result.table()
    assert len(rows) == len(result)
    params, workload, value = rows[0]
    assert "arch" in params and isinstance(value, float)


def test_empty_best_raises():
    with pytest.raises(ValueError):
        SweepResult([]).best(lambda p: p.ipc)


def test_sweep_with_custom_builder(tmp_path):
    from repro.core.config import config_for

    runner = ExperimentRunner(target_ops=800, cache_dir=str(tmp_path))
    result = sweep(
        {"num_piqs": [3, 7]},
        config_builder=lambda num_piqs: config_for(
            "ballerino", num_piqs=num_piqs
        ),
        workloads=["dag_wide"],
        runner=runner,
    )
    assert len(result) == 2
    assert result.geomean_ipc(num_piqs=7) >= result.geomean_ipc(num_piqs=3) * 0.95
