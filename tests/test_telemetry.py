"""Tests for the telemetry subsystem: tracer, attribution, exporters."""

import json

import pytest

from repro import build_trace, config_for
from repro.analysis.runner import ExperimentRunner
from repro.core.pipeline import Pipeline, simulate
from repro.telemetry import (
    CATEGORIES,
    LIFECYCLE_RANK,
    StallAttribution,
    Tracer,
    read_chrome_trace,
    write_chrome_trace,
    write_konata,
)
from repro.workloads.suite import SUITE_NAMES


def traced_run(workload, arch, ops=1200):
    trace = build_trace(workload, target_ops=ops)
    tracer, attribution = Tracer(), StallAttribution()
    result = simulate(trace, config_for(arch), tracer=tracer,
                      attribution=attribution)
    return result, tracer, attribution


class TestEventOrdering:
    @pytest.fixture(scope="class")
    def traced(self):
        return traced_run("dotprod", "ballerino")

    def test_every_committed_uop_walks_the_lifecycle_in_order(self, traced):
        result, tracer, _ = traced
        assert len(tracer.ops) == result.stats.committed
        for seq in tracer.seqs():
            final = tracer.attempts_for(seq)[-1]
            stages = [e for e in final if e.stage in LIFECYCLE_RANK]
            names = [e.stage for e in stages]
            # every committed attempt visits the full lifecycle, in order
            assert names[0] == "fetch" and names[-1] == "commit"
            ranks = [LIFECYCLE_RANK[n] for n in names]
            assert ranks == sorted(ranks), f"seq {seq}: {names}"
            cycles = [e.cycle for e in stages]
            assert cycles == sorted(cycles), f"seq {seq} not time-ordered"

    def test_wakeup_events_carry_the_destination_register(self, traced):
        _, tracer, _ = traced
        wakeups = [e for e in tracer.events if e.stage == "wakeup"]
        assert wakeups and all(e.cause.startswith("p") for e in wakeups)

    def test_steering_events_present_for_ballerino(self, traced):
        _, tracer, _ = traced
        steers = [e for e in tracer.events if e.stage == "steer"]
        assert steers  # non-ready ops must have been steered to P-IQs
        assert all("->" in e.cause for e in steers)

    def test_squashed_attempts_are_refetched(self):
        # histogram aliases stores and loads, forcing order violations
        result, tracer, _ = traced_run("histogram", "ooo", ops=2000)
        if result.stats.order_violations == 0:
            pytest.skip("no violation in this trace")
        squashed = [e.seq for e in tracer.events if e.stage == "squash"]
        assert squashed
        seq = squashed[0]
        assert len(tracer.attempts_for(seq)) >= 2


class TestStallAttribution:
    @pytest.mark.parametrize("arch", ["ooo", "ballerino", "inorder"])
    @pytest.mark.parametrize("workload", SUITE_NAMES)
    def test_categories_sum_to_total_cycles(self, arch, workload):
        trace = build_trace(workload, target_ops=600)
        attribution = StallAttribution()
        result = simulate(trace, config_for(arch), attribution=attribution)
        stalls = result.stats.stall_cycles
        assert set(stalls) == set(CATEGORIES)
        assert sum(stalls.values()) == result.cycles
        assert all(v >= 0 for v in stalls.values())

    def test_commit_cycles_bounded_by_committed_ops(self):
        result, _, _ = traced_run("dotprod", "ooo")
        assert 0 < result.stats.stall_cycles["commit"] <= result.stats.committed

    def test_memory_dominates_a_pointer_chase(self):
        result, _, _ = traced_run("pointer_chase", "ooo")
        stalls = result.stats.stall_cycles
        assert stalls["memory"] == max(stalls.values())

    def test_occupancy_averages_within_capacity(self):
        result, _, attribution = traced_run("stream_triad", "ooo")
        occupancy = result.stats.occupancy
        config = config_for("ooo")
        assert 0 < occupancy["rob"] <= config.rob_size
        assert 0 <= occupancy["lq"] <= config.lq_size
        assert attribution.samples == result.cycles


class TestDisabledTracer:
    def test_disabled_run_is_bit_identical_and_records_nothing(self):
        trace = build_trace("histogram", target_ops=1500)
        config = config_for("ballerino")
        plain = Pipeline(trace, config).run()
        traced = simulate(trace, config, tracer=Tracer(),
                          attribution=StallAttribution())
        assert plain.cycles == traced.cycles
        assert plain.stats.committed == traced.stats.committed
        assert plain.stats.energy_events == traced.stats.energy_events
        # without telemetry the result carries no attribution payload
        assert plain.stats.stall_cycles == {}
        assert plain.stats.occupancy == {}

    def test_pipeline_defaults_to_no_tracer(self):
        trace = build_trace("dotprod", target_ops=300)
        pipe = Pipeline(trace, config_for("ooo"))
        assert pipe.tracer is None and pipe.attribution is None
        assert pipe.lsu.tracer is None


class TestExporters:
    @pytest.fixture(scope="class")
    def tiny(self):
        return traced_run("dotprod", "ooo", ops=300)

    def test_chrome_trace_round_trips(self, tiny, tmp_path):
        result, tracer, _ = tiny
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path), label="tiny",
                           metadata={"workload": "dotprod"})
        document = read_chrome_trace(str(path))
        events = document["traceEvents"]
        assert document["otherData"]["workload"] == "dotprod"
        slices = [e for e in events if e.get("ph") == "X"]
        # every committed µop contributes its full lifecycle of slices
        seqs = {e["args"]["seq"] for e in slices}
        assert seqs == set(tracer.seqs())
        commits = [e for e in slices if e["name"] == "commit"]
        assert len(commits) == result.stats.committed
        for entry in slices:
            assert entry["dur"] >= 1 and entry["ts"] >= 0

    def test_chrome_lanes_never_overlap(self, tiny, tmp_path):
        _, tracer, _ = tiny
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        events = read_chrome_trace(str(path))["traceEvents"]
        spans = {}
        for entry in events:
            if entry.get("ph") != "X":
                continue
            spans.setdefault((entry["tid"], entry["args"]["seq"]), []).append(
                (entry["ts"], entry["ts"] + entry["dur"])
            )
        by_lane = {}
        for (lane, seq), stage_spans in spans.items():
            start = min(s for s, _ in stage_spans)
            end = max(e for _, e in stage_spans)
            by_lane.setdefault(lane, []).append((start, end))
        for lane, intervals in by_lane.items():
            intervals.sort()
            for (_, prev_end), (next_start, _) in zip(intervals, intervals[1:]):
                assert next_start >= prev_end, f"lane {lane} overlaps"

    def test_read_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            read_chrome_trace(str(path))

    def test_konata_log_structure(self, tiny, tmp_path):
        result, tracer, _ = tiny
        path = tmp_path / "trace.kanata"
        write_konata(tracer, str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "Kanata\t0004"
        assert lines[1].startswith("C=\t")
        retires = [l for l in lines if l.startswith("R\t")]
        flushed = [l for l in retires if l.endswith("\t1")]
        assert len(retires) - len(flushed) == result.stats.committed
        declared = {l.split("\t")[1] for l in lines if l.startswith("I\t")}
        staged = {l.split("\t")[1] for l in lines if l.startswith("S\t")}
        assert staged <= declared


class TestCacheSchemaVersion:
    def test_key_changes_with_schema_version(self, tmp_path, monkeypatch):
        runner = ExperimentRunner(target_ops=500, cache_dir=str(tmp_path))
        config = config_for("ooo")
        key_before = runner._key("dotprod", config, seed=7)
        import repro.analysis.runner as runner_mod

        monkeypatch.setattr(runner_mod, "RESULT_SCHEMA_VERSION", 999)
        key_after = runner._key("dotprod", config, seed=7)
        assert key_before != key_after

    def test_disk_cache_round_trips_stall_cycles(self, tmp_path):
        # a result with telemetry fields survives the disk cache intact
        trace = build_trace("dotprod", target_ops=400)
        attribution = StallAttribution()
        result = simulate(trace, config_for("ooo"), attribution=attribution)
        from repro.core.stats import SimResult

        restored = SimResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.stats.stall_cycles == result.stats.stall_cycles
        assert restored.stats.occupancy == result.stats.occupancy
