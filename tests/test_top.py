"""``repro top``: log tailing, model folding, frame rendering."""

import io
import json

from repro.telemetry.top import LogTail, TopModel, render_top, run_top


def _write_lines(path, records):
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


def _event(event, t=1.0, **fields):
    return {"event": event, "t": t, "elapsed": t, **fields}


class TestLogTail:
    def test_incremental_polling_returns_only_new_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_lines(path, [_event("campaign_start", tasks=4)])
        tail = LogTail(str(path))
        assert [r["event"] for r in tail.poll()] == ["campaign_start"]
        assert tail.poll() == []  # nothing new
        _write_lines(path, [_event("finish", t=2.0, worker=1, seconds=0.5)])
        assert [r["event"] for r in tail.poll()] == ["finish"]

    def test_missing_file_is_empty_not_error(self, tmp_path):
        tail = LogTail(str(tmp_path / "absent.jsonl"))
        assert tail.poll() == []

    def test_torn_tail_buffered_until_complete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record = json.dumps(_event("heartbeat", done=1, total=2))
        path.write_text(record[: len(record) // 2])  # writer mid-line
        tail = LogTail(str(path))
        assert tail.poll() == []
        path.write_text(record + "\n")  # writer finished the line
        assert [r["event"] for r in tail.poll()] == ["heartbeat"]

    def test_truncation_resets_offset(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_lines(path, [_event("campaign_start", tasks=4),
                            _event("finish", worker=1, seconds=0.1)])
        tail = LogTail(str(path))
        assert len(tail.poll()) == 2
        path.write_text("")  # rotated
        _write_lines(path, [_event("campaign_start", tasks=2)])
        assert [r["event"] for r in tail.poll()] == ["campaign_start"]

    def test_damaged_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('GARBAGE\n[1, 2]\n'
                        + json.dumps(_event("cache_hit", key="k")) + "\n")
        tail = LogTail(str(path))
        assert [r["event"] for r in tail.poll()] == ["cache_hit"]


class TestTopModel:
    def test_campaign_progress_folds(self):
        model = TopModel()
        model.feed_records([
            _event("campaign_start", tasks=3, mode="serial"),
            _event("finish", t=2.0, worker=1, seconds=0.5),
            _event("cache_hit", t=3.0, key="k"),
        ])
        assert model.total() == 3
        assert model.done() == 2
        assert model.campaign_done is None

    def test_heartbeat_rate_and_eta_preferred(self):
        model = TopModel()
        model.feed_records([_event(
            "heartbeat", done=2, total=4, inflight=1, queued=1,
            elapsed_s=1.0, sims_per_sec=2.0, eta_s=1.0)])
        assert model.done() == 2
        assert model.total() == 4
        assert model.sims_per_sec() == 2.0
        assert model.eta_s() == 1.0

    def test_rate_derived_from_finish_times_without_heartbeat(self):
        model = TopModel()
        model.feed_records([
            _event("finish", t=float(t), worker=1, seconds=0.1)
            for t in (1, 2, 3)])
        assert model.sims_per_sec() == 1.0  # 2 intervals over 2 seconds

    def test_shard_lifecycle(self):
        model = TopModel()
        model.feed_records([
            _event("shard_start", shard=0, of=2, cells=2),
            _event("shard_start", shard=1, of=2, cells=2),
            _event("shard_end", shard=0, of=2, completed=2, failed=0),
        ])
        assert model.shards[(0, 2)]["state"] == "done"
        assert model.shards[(1, 2)]["state"] == "running"

    def test_fault_counters(self):
        model = TopModel()
        model.feed_records([
            _event("retry", key="k", attempt=1, kind="error"),
            _event("timeout", key="k", seconds=1.0),
            _event("quarantine", key="k", error="boom", attempts=3),
            _event("cache_warning", reason="corrupt", count=2, key="k"),
        ])
        assert (model.retries, model.timeouts,
                model.quarantined, model.cache_warnings) == (1, 1, 1, 2)


class TestRenderTop:
    def _model(self):
        model = TopModel()
        model.feed_records([
            _event("campaign_start", tasks=4, mode="parallel"),
            _event("heartbeat", t=2.0, done=2, total=4, inflight=1,
                   queued=1, elapsed_s=1.0, sims_per_sec=2.0, eta_s=1.0),
            _event("finish", t=2.0, worker=1, seconds=0.5),
        ])
        return model

    def test_frame_shows_progress_rate_and_eta(self):
        frame = render_top(self._model(), now=10.0, clock="00:00:10")
        assert "2/4" in frame
        assert "2.00 sims/s" in frame
        assert "ETA 1s" in frame
        assert "1 in flight" in frame

    def test_frame_shows_server_health_and_queues(self):
        model = self._model()
        model.feed_health({"status": "ok", "uptime_s": 5.0, "workers": 2,
                           "jobs": {"running": 1, "queued": 0,
                                    "done": 3, "failed": 0}})
        model.feed_metrics({
            "serve.queue.depth.batch": {"type": "gauge", "value": 2},
            "serve.cells.completed": {"type": "counter", "value": 7},
        })
        frame = render_top(model, now=10.0, clock="00:00:10")
        assert "server    ok" in frame
        assert "batch: 2" in frame
        assert "7 cells executed" in frame

    def test_frame_marks_unreachable_server(self):
        model = self._model()
        model.feed_health(None, error="connection refused")
        frame = render_top(model, now=10.0, clock="00:00:10")
        assert "UNREACHABLE" in frame

    def test_done_campaign_renders_done_status(self):
        model = self._model()
        model.feed_records([_event("campaign_end", t=3.0, simulations=4,
                                   seconds=1.0, quarantined=0)])
        frame = render_top(model, now=10.0, clock="00:00:10")
        assert "· done ·" in frame


class TestRunTop:
    def test_once_renders_single_frame(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_lines(path, [
            _event("campaign_start", tasks=2, mode="serial"),
            _event("finish", t=2.0, worker=1, seconds=0.5),
            _event("campaign_end", t=3.0, simulations=2, seconds=1.0,
                   quarantined=0),
        ])
        out = io.StringIO()
        assert run_top([str(path)], once=True, interval=0.0, out=out) == 0
        frame = out.getvalue()
        assert frame.count("repro top") == 1
        assert "· done ·" in frame

    def test_iterations_merge_multiple_logs(self, tmp_path):
        logs = []
        for shard in (0, 1):
            path = tmp_path / f"shard-{shard}.jsonl"
            _write_lines(path, [
                _event("shard_start", shard=shard, of=2, cells=1),
                _event("finish", t=2.0 + shard, worker=1, seconds=0.2),
                _event("shard_end", shard=shard, of=2, completed=1,
                       failed=0),
            ])
            logs.append(str(path))
        out = io.StringIO()
        assert run_top(logs, iterations=2, interval=0.0, out=out) == 0
        frame = out.getvalue()
        assert "0/2 done" in frame and "1/2 done" in frame
        assert frame.count("repro top") == 2
