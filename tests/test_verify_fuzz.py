"""Tests for the differential fuzzer (repro.verify): generator, oracle,
shrinker, campaign driver, and the ``repro fuzz`` CLI command."""

import pytest

from repro.cli import main
from repro.verify.fuzz import run_fuzz
from repro.verify.genprog import (
    GenParams,
    PROFILES,
    assemble,
    generate_spec,
    render_source,
)
from repro.verify.oracle import (
    ReplayMismatch,
    replay_commits,
    run_reference,
    run_spec,
)
from repro.verify.shrink import ddmin
from repro.workloads.executor import execute


class TestGenerator:
    def test_deterministic(self):
        assert generate_spec(42) == generate_spec(42)

    def test_seeds_differ(self):
        assert generate_spec(1) != generate_spec(2)

    def test_profiles_rotate(self):
        # one seed per profile: specs must not collapse to one shape
        specs = [generate_spec(seed) for seed in range(len(PROFILES))]
        assert len({tuple(map(repr, spec)) for spec in specs}) == len(specs)

    @pytest.mark.parametrize("seed", range(12))
    def test_terminates_within_default_cap(self, seed):
        """Termination by construction, within the CLI's default --ops."""
        trace = execute(assemble(generate_spec(seed)), max_ops=10_000)
        assert trace[-1].opcode.name == "halt"

    def test_deep_nesting_terminates(self):
        params = GenParams(size=90, loop_depth=4, max_trip=5,
                           branch_frac=0.25)
        trace = execute(assemble(generate_spec(3, params)), max_ops=50_000)
        assert trace[-1].opcode.name == "halt"

    def test_assemble_repairs_dangling_targets(self):
        spec = generate_spec(5)
        # drop every label: all branch targets dangle
        stripped = [item for item in spec if item[0] != "label"]
        trace = execute(assemble(stripped), max_ops=50_000)
        assert trace[-1].opcode.name == "halt"

    def test_render_source_round_trips(self):
        spec = generate_spec(8)
        namespace = {}
        exec(render_source(spec), namespace)  # noqa: S102 - our own text
        rendered = namespace["program"]
        reference = assemble(spec)
        ref_trace = execute(reference, max_ops=50_000)
        got_trace = execute(rendered, max_ops=50_000)
        assert [op.pc for op in got_trace] == [op.pc for op in ref_trace]


class TestShrinker:
    @staticmethod
    def _contains(*needles):
        return lambda items: all(n in items for n in needles)

    def test_shrinks_to_minimal_core(self):
        items = list(range(40))
        assert sorted(ddmin(items, self._contains(3, 17))) == [3, 17]

    def test_single_item_core(self):
        items = list(range(33))
        assert ddmin(items, self._contains(20)) == [20]

    def test_respects_eval_budget(self):
        evals = []
        items = list(range(64))

        def predicate(candidate):
            evals.append(1)
            return 7 in candidate and 50 in candidate

        ddmin(items, predicate, max_evals=10)
        assert len(evals) <= 10


class TestOracle:
    def test_clean_program_on_sample_arches(self):
        spec = generate_spec(2)
        assert run_spec(spec, arches=("inorder", "ooo", "ballerino")) == []

    def test_replay_rejects_dropped_commit(self):
        spec = generate_spec(2)
        program, trace, _, _ = run_reference(spec)
        with pytest.raises(ReplayMismatch):
            replay_commits(program, trace[:10] + trace[11:])

    def test_replay_accepts_true_stream(self):
        spec = generate_spec(2)
        program, trace, ref_regs, ref_mem = run_reference(spec)
        regs, mem = replay_commits(program, trace)
        assert regs == ref_regs
        # executor memory may carry pre-seeded zeros; compare values
        for addr in set(ref_mem) | set(mem):
            assert ref_mem.get(addr, 0) == mem.get(addr, 0)


class TestCampaign:
    def test_small_campaign_clean(self):
        report = run_fuzz(programs=3, seed=0,
                          arches=("inorder", "ooo", "ballerino"))
        assert report.ok
        assert "all clean" in report.summary()

    def test_failure_reporting_shape(self):
        # force a "failure" through the nonhalting path with a tiny cap
        report = run_fuzz(programs=1, seed=0, arches=("inorder",),
                          max_ops=50, shrink=True)
        assert not report.ok
        finding = report.findings[0]
        assert finding.failure.kind == "nonhalting"
        assert "repro" in finding.report() or "fuzz_seed" in finding.report()


class TestCLI:
    def test_fuzz_command_clean(self, capsys):
        code = main(["fuzz", "--programs", "1", "--seed", "0",
                     "--no-shrink", "--arches", "inorder", "ooo"])
        assert code == 0
        assert "all clean" in capsys.readouterr().out

    def test_fuzz_seed_flag_after_subcommand(self, capsys):
        # the issue's canonical invocation order must parse
        code = main(["fuzz", "--programs", "1", "--seed", "3",
                     "--no-shrink", "--arches", "inorder"])
        assert code == 0

    def test_fuzz_rejects_unknown_arch(self, capsys):
        code = main(["fuzz", "--programs", "1", "--arches", "nope"])
        assert code == 2

    def test_fuzz_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "fuzz.txt"
        code = main(["fuzz", "--programs", "1", "--seed", "0",
                     "--no-shrink", "--arches", "inorder",
                     "--out", str(out)])
        assert code == 0
        assert "all clean" in out.read_text()
