"""Event-driven wakeup must be cycle-for-cycle identical to polling.

``tests/golden_stats.json`` pins cycles/committed/issued/IPC for every
(workload, arch) cell, captured from the per-cycle-polling implementation
this scoreboard replaced.  Any drift means the event-driven wakeup
changed scheduling behaviour — which is a bug by definition, however
small the delta.

The ballerino-family cells were re-captured after the fuzzer-found
scheduler fixes (stale steering reservations, shared P-IQ collapse
remap, ideal-sharing capacity — see docs/correctness.md): those fixes
legitimately change steering timing, so cycle counts moved by a few
cycles on 10 of 84 cells while committed/issued stayed identical.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import config_for
from repro.core.ifop import InFlightOp
from repro.core.pipeline import Pipeline, simulate
from repro.core.wakeup import WakeupScoreboard
from repro.isa.instruction import DynOp
from repro.isa.opcodes import opcode
from repro.workloads.suite import get_trace

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_stats.json").read_text()
)


@pytest.mark.parametrize("cell", sorted(GOLDEN["results"]))
def test_matches_polling_golden_stats(cell):
    workload, arch = cell.split("/")
    trace = get_trace(workload, GOLDEN["ops"], GOLDEN["seed"])
    result = simulate(trace, config_for(arch))
    expect = GOLDEN["results"][cell]
    assert result.cycles == expect["cycles"], cell
    assert result.stats.committed == expect["committed"], cell
    assert result.stats.issued == expect["issued"], cell
    # golden IPC was rounded to 6 decimals when captured
    assert round(result.ipc, 6) == pytest.approx(expect["ipc"]), cell


@pytest.mark.parametrize("arch", ["ooo", "ballerino", "dnb", "fxa", "spq"])
def test_scoreboard_invariants_hold(arch):
    """check_invariants cross-checks the scoreboard against a poll."""
    trace = get_trace("histogram", 2000, 7)
    pipe = Pipeline(trace, config_for(arch), check_invariants=True)
    result = pipe.run()
    assert result.stats.committed == 2000


# ---------------------------------------------------------------------------
# scoreboard unit tests


def _ifop(seq, srcs=(), dest=None):
    op = DynOp(seq=seq, pc=seq * 4, opcode=opcode("add"), dest=0,
               srcs=(), mem_addr=None, taken=None, target_pc=None,
               fallthrough_pc=None)
    ifop = InFlightOp(seq, op, decode_cycle=0)
    ifop.src_pregs = tuple(srcs)
    ifop.dest_preg = dest
    return ifop


class _Ready:
    """Minimal ready-file: a set of ready pregs."""

    def __init__(self, ready=()):
        self._ready = set(ready)

    def is_ready(self, preg, cycle):
        return preg in self._ready

    def mark(self, preg):
        self._ready.add(preg)


def test_wake_decrements_and_fires_on_last_source():
    inflight = {}
    ready = _Ready(ready={1})
    board = WakeupScoreboard(inflight, ready)
    consumer = _ifop(10, srcs=(1, 2, 3))
    inflight[10] = consumer
    board.register(consumer, cycle=0)
    assert consumer.wake_pending == 2  # preg 1 already ready
    ready.mark(2)
    assert board.wake(2, cycle=1) == ()  # preg 3 still pending
    assert consumer.wake_pending == 1
    ready.mark(3)
    assert board.wake(3, cycle=2) == (consumer,)
    assert consumer.wake_pending == 0


def test_duplicate_source_pregs_count_twice():
    inflight = {}
    ready = _Ready()
    board = WakeupScoreboard(inflight, ready)
    consumer = _ifop(11, srcs=(5, 5))
    inflight[11] = consumer
    board.register(consumer, cycle=0)
    assert consumer.wake_pending == 2
    ready.mark(5)
    # one broadcast wakes both index entries for preg 5
    assert board.wake(5, cycle=1) == (consumer,)
    assert consumer.wake_pending == 0


def test_stale_consumer_skipped_by_identity():
    inflight = {}
    ready = _Ready()
    board = WakeupScoreboard(inflight, ready)
    stale = _ifop(12, srcs=(7,))
    inflight[12] = stale
    board.register(stale, cycle=0)
    # squash + refetch: same seq, new InFlightOp object
    refetched = _ifop(12, srcs=(7,))
    inflight[12] = refetched
    board.register(refetched, cycle=1)
    ready.mark(7)
    woken = board.wake(7, cycle=2)
    assert woken == (refetched,)  # stale object never surfaces
    assert stale.wake_pending == 1  # untouched


def test_mdp_waiter_fires_on_store_issue():
    inflight = {}
    ready = _Ready()
    board = WakeupScoreboard(inflight, ready)
    load = _ifop(20)
    load.mdp_dep_seq = 15
    inflight[20] = load
    board.register(load, cycle=0)  # no srcs -> wake_pending == 0
    board.register_mdp(load)
    assert load.mdp_waiting
    assert board.store_issued(15) == (load,)
    assert not load.mdp_waiting
