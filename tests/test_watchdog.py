"""Forward-progress watchdog: a wedged pipeline must die loudly, fast,
and with a snapshot that names the stuck op — not spin to ``max_cycles``."""

import dataclasses
import pickle

import pytest

from repro.core.config import config_for
from repro.core.pipeline import DeadlockError, Pipeline, SimulationDeadlock
from repro.sched import create_scheduler
from repro.telemetry import render_snapshot
from repro.verify.chaos import WedgedScheduler
from repro.workloads.suite import get_trace

OPS = 400


def _wedged_pipeline(arch="ballerino", deadlock_cycles=2_000):
    cfg = dataclasses.replace(
        config_for(arch), deadlock_cycles=deadlock_cycles
    )
    trace = get_trace("histogram", OPS, 7)
    return Pipeline(
        trace, cfg,
        scheduler_factory=lambda core: WedgedScheduler(create_scheduler(core)),
    )


def test_wedge_raises_within_window():
    pipe = _wedged_pipeline(deadlock_cycles=2_000)
    with pytest.raises(DeadlockError) as excinfo:
        pipe.run()
    # fired promptly after the watchdog window, not at max_cycles
    assert pipe.cycle <= 2_000 + 2
    assert "no commit since cycle" in str(excinfo.value)


@pytest.mark.parametrize("arch", ["ooo", "ballerino", "ces"])
def test_snapshot_names_the_stuck_rob_head(arch):
    with pytest.raises(DeadlockError) as excinfo:
        _wedged_pipeline(arch).run()
    err = excinfo.value
    # the headline names the ROB-head µop that never left the window
    assert "ROB head seq=0" in str(err)
    snap = err.snapshot
    assert snap["committed"] == 0
    assert snap["rob"]["head"]["seq"] == 0
    assert snap["scheduler"]["occupancy"] > 0
    assert snap["config"].startswith(f"{arch}")


def test_deadlock_error_is_simulation_deadlock():
    # pre-watchdog callers (oracle, tests) catch SimulationDeadlock
    with pytest.raises(SimulationDeadlock):
        _wedged_pipeline().run()


def test_deadlock_error_survives_pickling():
    """Pool workers ship the exception across the process boundary."""
    try:
        _wedged_pipeline().run()
    except DeadlockError as err:
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, DeadlockError)
        assert clone.snapshot == err.snapshot
        assert str(clone) == str(err)
    else:
        pytest.fail("wedged pipeline did not deadlock")


def test_render_snapshot_is_human_readable():
    with pytest.raises(DeadlockError) as excinfo:
        _wedged_pipeline().run()
    text = render_snapshot(excinfo.value.snapshot)
    for needle in ("pipeline snapshot", "ROB", "scheduler", "wakeup"):
        assert needle in text
    assert excinfo.value.render().startswith(str(excinfo.value))


def test_watchdog_disabled_falls_back_to_max_cycles():
    pipe = _wedged_pipeline(deadlock_cycles=0)
    with pytest.raises(DeadlockError) as excinfo:
        pipe.run(max_cycles=3_000)
    assert "max_cycles" in str(excinfo.value)
    assert pipe.cycle > 2_000  # the commit watchdog really was off


def test_healthy_run_unaffected_by_watchdog():
    cfg = dataclasses.replace(config_for("ooo"), deadlock_cycles=2_000)
    trace = get_trace("histogram", OPS, 7)
    result = Pipeline(trace, cfg).run()
    assert result.stats.committed == OPS
